//! Merge/compaction: the cloud-coordinated protocol of §V-B.
//!
//! When level `i` exceeds its page threshold, the edge ships *all* of
//! level `i`'s pages plus level `i+1`'s pages to the cloud. The cloud
//! verifies their authenticity (L0 pages against the block-cert
//! ledger, deeper levels leaf-for-leaf against the level forests it
//! maintains), performs a streaming k-way LSM merge over the
//! already-sorted runs (newest version per key wins, tombstones
//! dropped at the deepest level), re-partitions into range-covering
//! pages, patches the level's Merkle forest incrementally (O(k log n)
//! interior hashes for a k-page change), and signs the new level roots
//! and a fresh timestamped global root. An *empty-source* request is
//! background compaction: the same path, where the only change is
//! folding fragmented page runs back to capacity ([`crate::compact`]).
//!
//! Pages travel as `Arc`s: building a [`MergeRequest`] clones
//! pointers, not records.

use crate::compact::{fold_partial_pages, CompactionStats};
use crate::config::LsmConfig;
use crate::forest::MerkleForest;
use crate::kv::KvRecord;
use crate::level::{
    compute_global_root, empty_level_root, forest_over_reusing_pooled, GlobalRootCert,
    SignedLevelRoot,
};
use crate::page::{
    check_level_ranges, find_covering, split_into_pages, split_into_range_pages, L0Page, Page,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;
use wedge_crypto::{Digest, Identity, IdentityId};
use wedge_log::{BlockId, CertLedger, DecodeError};
use wedge_pool::Pool;

/// A merge request from an edge node.
#[derive(Clone, Debug, PartialEq)]
pub struct MergeRequest {
    /// The requesting edge.
    pub edge: IdentityId,
    /// Source level (0 = L0). All its pages move to `source_level+1`.
    pub source_level: u32,
    /// Source pages when `source_level == 0` (blocks ride along so the
    /// cloud can re-verify digests against its cert ledger).
    pub source_l0: Vec<Arc<L0Page>>,
    /// Source pages when `source_level >= 1`.
    pub source_pages: Vec<Arc<Page>>,
    /// The current pages of the target level.
    pub target_pages: Vec<Arc<Page>>,
    /// The edge's view of the index epoch (stale views are rejected).
    pub epoch: u64,
}

impl MergeRequest {
    /// Bytes shipped edge→cloud for this merge. `u64`: a multi-GiB
    /// merge must not wrap the cost accounting in release builds.
    pub fn wire_size(&self) -> u64 {
        let l0: u64 = self.source_l0.iter().map(|p| p.wire_size()).sum();
        let src: u64 = self.source_pages.iter().map(|p| p.wire_size()).sum();
        let tgt: u64 = self.target_pages.iter().map(|p| p.wire_size()).sum();
        32 + l0 + src + tgt
    }

    /// Exact byte length of [`MergeRequest::encode_into`]'s output.
    pub fn encoded_len(&self) -> usize {
        let l0: usize = self.source_l0.iter().map(|p| p.encoded_len()).sum();
        let src: usize = self.source_pages.iter().map(|p| p.encoded_len()).sum();
        let tgt: usize = self.target_pages.iter().map(|p| p.encoded_len()).sum();
        // edge + source_level + epoch + three counted page runs.
        8 + 4 + 8 + (8 + l0) + (8 + src) + (8 + tgt)
    }

    /// Canonical nestable wire encoding.
    pub fn encode_into(&self, enc: &mut wedge_log::Encoder) {
        enc.put_u64(self.edge.0).put_u32(self.source_level).put_u64(self.epoch);
        enc.put_u64(self.source_l0.len() as u64);
        for p in &self.source_l0 {
            p.encode_into(enc);
        }
        enc.put_u64(self.source_pages.len() as u64);
        for p in &self.source_pages {
            p.encode_into(enc);
        }
        enc.put_u64(self.target_pages.len() as u64);
        for p in &self.target_pages {
            p.encode_into(enc);
        }
    }

    /// Inverse of [`MergeRequest::encode_into`]; pages come back as
    /// fresh `Arc`s ready for sharing.
    pub fn decode_from(dec: &mut wedge_log::Decoder<'_>) -> Result<Self, wedge_log::DecodeError> {
        let edge = IdentityId(dec.get_u64()?);
        let source_level = dec.get_u32()?;
        let epoch = dec.get_u64()?;
        let n_l0 = dec.get_count(8)?;
        let mut source_l0 = Vec::with_capacity(n_l0);
        for _ in 0..n_l0 {
            source_l0.push(L0Page::decode_from(dec)?);
        }
        let n_src = dec.get_count(24)?;
        let mut source_pages = Vec::with_capacity(n_src);
        for _ in 0..n_src {
            source_pages.push(Page::decode_from(dec)?);
        }
        let n_tgt = dec.get_count(24)?;
        let mut target_pages = Vec::with_capacity(n_tgt);
        for _ in 0..n_tgt {
            target_pages.push(Page::decode_from(dec)?);
        }
        Ok(MergeRequest { edge, source_level, source_l0, source_pages, target_pages, epoch })
    }

    /// A cheap identity for retry deduplication: a digest over the
    /// request's scalar fields and the (memoized) digests of every
    /// page it ships. Two requests with equal fingerprints carry the
    /// same pages, so replaying the cached [`MergeResult`] is sound.
    pub fn fingerprint(&self) -> Digest {
        let n_pages = self.source_l0.len() + self.source_pages.len() + self.target_pages.len();
        let mut enc =
            wedge_log::Encoder::with_tag_and_capacity("wedge-merge-fp-v1", 44 + 32 * n_pages);
        enc.put_u64(self.edge.0).put_u32(self.source_level).put_u64(self.epoch);
        enc.put_u64(self.source_l0.len() as u64);
        for p in &self.source_l0 {
            enc.put_digest(&p.digest());
        }
        enc.put_u64(self.source_pages.len() as u64);
        for p in &self.source_pages {
            enc.put_digest(&p.digest());
        }
        enc.put_u64(self.target_pages.len() as u64);
        for p in &self.target_pages {
            enc.put_digest(&p.digest());
        }
        wedge_crypto::sha256(&enc.finish())
    }
}

/// The cloud's reply to a successful merge.
#[derive(Clone, Debug, PartialEq)]
pub struct MergeResult {
    /// The edge whose index was merged.
    pub edge: IdentityId,
    /// Source level that was drained.
    pub source_level: u32,
    /// New pages of the target level (`source_level + 1`).
    pub new_target_pages: Vec<Arc<Page>>,
    /// Signed root for the (now empty) source level; `None` for L0,
    /// which is not Merkle-covered.
    pub new_source_root: Option<SignedLevelRoot>,
    /// Signed root for the rebuilt target level.
    pub new_target_root: SignedLevelRoot,
    /// Authoritative roots of every Merkle level (L1..Ln) after the
    /// merge, in level order.
    pub all_level_roots: Vec<Digest>,
    /// Fresh timestamped global root.
    pub global: GlobalRootCert,
    /// The epoch after this merge.
    pub new_epoch: u64,
}

impl MergeResult {
    /// Bytes shipped cloud→edge when the reply is sent *in full*. The
    /// delta encoding ([`DeltaMergeResult`]) is what actually crosses
    /// the wire; this is the baseline it is measured against.
    pub fn wire_size(&self) -> u64 {
        let pages: u64 = self.new_target_pages.iter().map(|p| p.wire_size()).sum();
        let roots = (self.all_level_roots.len() as u64) * 32;
        pages + roots + 2 * 96 + 32
    }

    /// Exact byte length of [`MergeResult::encode_into`]'s output.
    pub fn encoded_len(&self) -> usize {
        let pages: usize = self.new_target_pages.iter().map(|p| p.encoded_len()).sum();
        8 + 4
            + (8 + pages)
            + 1
            + self.new_source_root.as_ref().map_or(0, |_| SignedLevelRoot::ENCODED_LEN)
            + SignedLevelRoot::ENCODED_LEN
            + (8 + 32 * self.all_level_roots.len())
            + GlobalRootCert::ENCODED_LEN
            + 8
    }

    /// Canonical nestable wire encoding.
    pub fn encode_into(&self, enc: &mut wedge_log::Encoder) {
        enc.put_u64(self.edge.0).put_u32(self.source_level);
        enc.put_u64(self.new_target_pages.len() as u64);
        for p in &self.new_target_pages {
            p.encode_into(enc);
        }
        enc.put_option(self.new_source_root.as_ref(), |e, r| r.encode_into(e));
        self.new_target_root.encode_into(enc);
        enc.put_u64(self.all_level_roots.len() as u64);
        for r in &self.all_level_roots {
            enc.put_digest(r);
        }
        self.global.encode_into(enc);
        enc.put_u64(self.new_epoch);
    }

    /// Inverse of [`MergeResult::encode_into`]; pages come back as
    /// fresh `Arc`s that [`crate::tree::LsMerkle::apply_merge_result`]
    /// shares into the level, exactly like in-process results.
    pub fn decode_from(dec: &mut wedge_log::Decoder<'_>) -> Result<Self, wedge_log::DecodeError> {
        let edge = IdentityId(dec.get_u64()?);
        let source_level = dec.get_u32()?;
        let n_pages = dec.get_count(24)?;
        let mut new_target_pages = Vec::with_capacity(n_pages);
        for _ in 0..n_pages {
            new_target_pages.push(Page::decode_from(dec)?);
        }
        let new_source_root = dec.get_option(SignedLevelRoot::decode_from)?;
        let new_target_root = SignedLevelRoot::decode_from(dec)?;
        let n_roots = dec.get_count(32)?;
        let mut all_level_roots = Vec::with_capacity(n_roots);
        for _ in 0..n_roots {
            all_level_roots.push(dec.get_digest()?);
        }
        let global = GlobalRootCert::decode_from(dec)?;
        let new_epoch = dec.get_u64()?;
        Ok(MergeResult {
            edge,
            source_level,
            new_target_pages,
            new_source_root,
            new_target_root,
            all_level_roots,
            global,
            new_epoch,
        })
    }
}

/// One target-page slot in a delta-encoded merge reply.
#[derive(Clone, Debug, PartialEq)]
pub enum PageDelta {
    /// A page the edge does not already hold: shipped in full.
    Full(Arc<Page>),
    /// Byte-identical to a page of the originating [`MergeRequest`]:
    /// indices cover `target_pages` first, then `source_pages` shifted
    /// by `target_pages.len()`. Resolution rehydrates the reference
    /// into the request's own `Arc`, so nothing is re-shipped and
    /// nothing is re-hashed.
    Reused(u32),
}

/// A [`MergeResult`] delta-encoded against its [`MergeRequest`]: every
/// new target page that is byte-identical to a page the edge already
/// holds (a reused `Arc` from the request) travels as a 5-byte
/// reference instead of its full records. This is what keeps the
/// largest cloud→edge message proportional to the *changed* pages of a
/// merge, not the target level's size — without it, a big-target/
/// small-source merge reply can exceed the frame cap and silently
/// wedge the partition.
///
/// The codec is deliberately not self-contained: decoding yields this
/// struct, and [`DeltaMergeResult::resolve`] needs the outstanding
/// request to rehydrate references. The edge keys that request by
/// [`MergeRequest::fingerprint`], which also makes replayed results
/// work: a retried request carries the same pages (same fingerprint),
/// so the cloud's replay cache can delta-encode against the *retry*
/// and the references still resolve.
#[derive(Clone, Debug, PartialEq)]
pub struct DeltaMergeResult {
    /// [`MergeRequest::fingerprint`] of the request this reply answers
    /// — [`DeltaMergeResult::resolve`] refuses any other request.
    pub request_fp: Digest,
    /// The edge whose index was merged.
    pub edge: IdentityId,
    /// Source level that was drained.
    pub source_level: u32,
    /// New pages of the target level, full or by reference.
    pub pages: Vec<PageDelta>,
    /// Signed root for the (now empty) source level; `None` for L0.
    pub new_source_root: Option<SignedLevelRoot>,
    /// Signed root for the rebuilt target level.
    pub new_target_root: SignedLevelRoot,
    /// Authoritative roots of every Merkle level after the merge.
    pub all_level_roots: Vec<Digest>,
    /// Fresh timestamped global root.
    pub global: GlobalRootCert,
    /// The epoch after this merge.
    pub new_epoch: u64,
}

impl DeltaMergeResult {
    /// Delta-encodes `res` against `req` by memoized page digest (not
    /// pointer identity, so a replay delta-encoded against a retried
    /// request — equal pages, fresh `Arc`s — still dedups fully).
    pub fn delta_against(res: &MergeResult, req: &MergeRequest) -> Self {
        let mut by_digest: HashMap<Digest, u32> = HashMap::new();
        for (i, p) in req.target_pages.iter().chain(req.source_pages.iter()).enumerate() {
            by_digest.entry(p.digest()).or_insert(i as u32);
        }
        let pages = res
            .new_target_pages
            .iter()
            .map(|p| match by_digest.get(&p.digest()) {
                Some(&i) => PageDelta::Reused(i),
                None => PageDelta::Full(Arc::clone(p)),
            })
            .collect();
        DeltaMergeResult {
            request_fp: req.fingerprint(),
            edge: res.edge,
            source_level: res.source_level,
            pages,
            new_source_root: res.new_source_root.clone(),
            new_target_root: res.new_target_root.clone(),
            all_level_roots: res.all_level_roots.clone(),
            global: res.global.clone(),
            new_epoch: res.new_epoch,
        }
    }

    /// Rehydrates into the full [`MergeResult`] by resolving every
    /// reference into `req`'s own `Arc`s. A fingerprint mismatch (the
    /// reply answers a different request) or an out-of-range reference
    /// is a typed [`DecodeError`] — hostile or stale replies can never
    /// panic the edge, and the in-flight request stays armed for the
    /// retry clock.
    pub fn resolve(&self, req: &MergeRequest) -> Result<MergeResult, DecodeError> {
        if self.request_fp != req.fingerprint() {
            return Err(DecodeError::Malformed("merge delta answers a different request"));
        }
        let targets = req.target_pages.len();
        let mut new_target_pages = Vec::with_capacity(self.pages.len());
        for slot in &self.pages {
            new_target_pages.push(match slot {
                PageDelta::Full(p) => Arc::clone(p),
                PageDelta::Reused(i) => {
                    let i = *i as usize;
                    let page = if i < targets {
                        req.target_pages.get(i)
                    } else {
                        req.source_pages.get(i - targets)
                    };
                    Arc::clone(
                        page.ok_or(DecodeError::Malformed("merge reuse index out of range"))?,
                    )
                }
            });
        }
        Ok(MergeResult {
            edge: self.edge,
            source_level: self.source_level,
            new_target_pages,
            new_source_root: self.new_source_root.clone(),
            new_target_root: self.new_target_root.clone(),
            all_level_roots: self.all_level_roots.clone(),
            global: self.global.clone(),
            new_epoch: self.new_epoch,
        })
    }

    /// Pages travelling as references.
    pub fn reused_pages(&self) -> u64 {
        self.pages.iter().filter(|p| matches!(p, PageDelta::Reused(_))).count() as u64
    }

    /// Pages travelling in full.
    pub fn full_pages(&self) -> u64 {
        self.pages.iter().filter(|p| matches!(p, PageDelta::Full(_))).count() as u64
    }

    /// Bytes shipped cloud→edge for this delta reply: full pages plus
    /// 5 bytes per reference — the number the `merge_reply_bytes`
    /// bench tracks against [`MergeResult::wire_size`].
    pub fn wire_size(&self) -> u64 {
        let pages: u64 = self
            .pages
            .iter()
            .map(|p| match p {
                PageDelta::Full(p) => 1 + p.wire_size(),
                PageDelta::Reused(_) => 5,
            })
            .sum();
        let roots = (self.all_level_roots.len() as u64) * 32;
        32 + pages + roots + 2 * 96 + 32
    }

    /// Exact byte length of [`DeltaMergeResult::encode_into`]'s output.
    pub fn encoded_len(&self) -> usize {
        let pages: usize = self
            .pages
            .iter()
            .map(|p| match p {
                PageDelta::Full(p) => 1 + p.encoded_len(),
                PageDelta::Reused(_) => 1 + 4,
            })
            .sum();
        32 + 8
            + 4
            + (8 + pages)
            + 1
            + self.new_source_root.as_ref().map_or(0, |_| SignedLevelRoot::ENCODED_LEN)
            + SignedLevelRoot::ENCODED_LEN
            + (8 + 32 * self.all_level_roots.len())
            + GlobalRootCert::ENCODED_LEN
            + 8
    }

    /// Canonical nestable wire encoding.
    pub fn encode_into(&self, enc: &mut wedge_log::Encoder) {
        enc.put_digest(&self.request_fp).put_u64(self.edge.0).put_u32(self.source_level);
        enc.put_u64(self.pages.len() as u64);
        for slot in &self.pages {
            match slot {
                PageDelta::Full(p) => {
                    enc.put_u8(0);
                    p.encode_into(enc);
                }
                PageDelta::Reused(i) => {
                    enc.put_u8(1);
                    enc.put_u32(*i);
                }
            }
        }
        enc.put_option(self.new_source_root.as_ref(), |e, r| r.encode_into(e));
        self.new_target_root.encode_into(enc);
        enc.put_u64(self.all_level_roots.len() as u64);
        for r in &self.all_level_roots {
            enc.put_digest(r);
        }
        self.global.encode_into(enc);
        enc.put_u64(self.new_epoch);
    }

    /// Inverse of [`DeltaMergeResult::encode_into`]. Context-free:
    /// references stay references until [`DeltaMergeResult::resolve`]
    /// is handed the matching request.
    pub fn decode_from(dec: &mut wedge_log::Decoder<'_>) -> Result<Self, DecodeError> {
        let request_fp = dec.get_digest()?;
        let edge = IdentityId(dec.get_u64()?);
        let source_level = dec.get_u32()?;
        // A reference is the smallest slot: tag byte + u32 index.
        let n_pages = dec.get_count(5)?;
        let mut pages = Vec::with_capacity(n_pages);
        for _ in 0..n_pages {
            pages.push(match dec.get_u8()? {
                0 => PageDelta::Full(Page::decode_from(dec)?),
                1 => PageDelta::Reused(dec.get_u32()?),
                _ => return Err(DecodeError::Malformed("page delta tag")),
            });
        }
        let new_source_root = dec.get_option(SignedLevelRoot::decode_from)?;
        let new_target_root = SignedLevelRoot::decode_from(dec)?;
        let n_roots = dec.get_count(32)?;
        let mut all_level_roots = Vec::with_capacity(n_roots);
        for _ in 0..n_roots {
            all_level_roots.push(dec.get_digest()?);
        }
        let global = GlobalRootCert::decode_from(dec)?;
        let new_epoch = dec.get_u64()?;
        Ok(DeltaMergeResult {
            request_fp,
            edge,
            source_level,
            pages,
            new_source_root,
            new_target_root,
            all_level_roots,
            global,
            new_epoch,
        })
    }
}

/// One page slot in a delta-encoded merge request.
///
/// The tag byte *is* the level: `0` means a full page follows; any
/// other value `L` is a reference into the cloud's retained run for
/// Merkle level `L` followed by a `u32` index — exactly 5 bytes on
/// the wire. L0 is never retained (its pages are blocks, re-verified
/// against the cert ledger every merge), so `0` is unambiguous.
#[derive(Clone, Debug, PartialEq)]
pub enum ReqPageSlot {
    /// A page the cloud does not retain: shipped in full.
    Full(Arc<Page>),
    /// Byte-identical to the page at `index` of the run the cloud
    /// retains for `level` — resolution rehydrates it into the
    /// cloud's own `Arc`, so nothing is re-shipped or re-hashed.
    Retained {
        /// Merkle level whose retained run holds the page.
        level: u8,
        /// Index into that run.
        index: u32,
    },
}

/// The fingerprint a retained run is claimed under: a digest over the
/// edge, the level, and the run's page digests in order. Both sides
/// derive it independently — the cloud over the pages it just shipped
/// in a reply, the edge over the pages that reply installed — so a
/// reference is resolvable iff both still mean the same run.
pub fn retention_fingerprint(edge: IdentityId, level: u32, pages: &[Arc<Page>]) -> Digest {
    let mut enc =
        wedge_log::Encoder::with_tag_and_capacity("wedge-retain-fp-v1", 20 + 32 * pages.len());
    enc.put_u64(edge.0).put_u32(level).put_u64(pages.len() as u64);
    for p in pages {
        enc.put_digest(&p.digest());
    }
    wedge_crypto::sha256(&enc.finish())
}

/// One retained page run: the `Arc` pages the cloud shipped (or
/// passed through) for a level in its last merge reply, under the
/// fingerprint the edge will claim them by. Shared pointers, not
/// copies — retaining a run costs O(pages) pointers, never records.
#[derive(Clone, Debug, PartialEq)]
pub struct RetainedLevel {
    /// [`retention_fingerprint`] over the run.
    pub fingerprint: Digest,
    /// The run's pages in level order.
    pub pages: Vec<Arc<Page>>,
}

impl RetainedLevel {
    /// Captures `pages` as the retained run for `level`.
    pub fn over(edge: IdentityId, level: u32, pages: &[Arc<Page>]) -> Self {
        RetainedLevel {
            fingerprint: retention_fingerprint(edge, level, pages),
            pages: pages.to_vec(),
        }
    }
}

fn encode_req_slots(slots: &[ReqPageSlot], enc: &mut wedge_log::Encoder) {
    enc.put_u64(slots.len() as u64);
    for slot in slots {
        match slot {
            ReqPageSlot::Full(p) => {
                enc.put_u8(0);
                p.encode_into(enc);
            }
            ReqPageSlot::Retained { level, index } => {
                debug_assert_ne!(*level, 0, "level 0 is the Full tag");
                enc.put_u8(*level);
                enc.put_u32(*index);
            }
        }
    }
}

fn decode_req_slots(
    dec: &mut wedge_log::Decoder<'_>,
) -> Result<Vec<ReqPageSlot>, wedge_log::DecodeError> {
    // A reference is the smallest slot: tag byte + u32 index.
    let n = dec.get_count(5)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(match dec.get_u8()? {
            0 => ReqPageSlot::Full(Page::decode_from(dec)?),
            level => ReqPageSlot::Retained { level, index: dec.get_u32()? },
        });
    }
    Ok(out)
}

/// A [`MergeRequest`] delta-encoded against the pages the cloud
/// retains from its own last replies: every source or target page the
/// last applied reply proves the cloud already holds travels as a
/// 5-byte [`ReqPageSlot::Retained`] reference instead of its full
/// records. This is the request-side mirror of [`DeltaMergeResult`]:
/// it keeps the largest edge→cloud message proportional to the
/// *changed* pages of a merge, not the target level's size — without
/// it, a big-target merge request can exceed the frame cap and wedge
/// the partition before the cloud ever sees it.
///
/// The codec is deliberately not self-contained: decoding yields this
/// struct, and [`DeltaMergeRequest::resolve`] needs the cloud's
/// retained runs to rehydrate references. Each referenced run is
/// claimed by `(level, fingerprint)`; a claim the cloud cannot match
/// (restart, eviction, a run two merges old) is a typed error the
/// engine answers with a full-request resend nack — one round trip,
/// never a wedge and never a panic.
#[derive(Clone, Debug, PartialEq)]
pub struct DeltaMergeRequest {
    /// The requesting edge.
    pub edge: IdentityId,
    /// Source level (0 = L0). All its pages move to `source_level+1`.
    pub source_level: u32,
    /// The edge's view of the index epoch.
    pub epoch: u64,
    /// The retained runs this request references, as `(level,
    /// fingerprint)` claims. Resolution checks every claim before
    /// honouring a single reference; levels the request does not
    /// reference are not claimed.
    pub retention: Vec<(u32, Digest)>,
    /// L0 source pages always travel in full (blocks are re-verified
    /// against the cert ledger, never retained).
    pub source_l0: Vec<Arc<L0Page>>,
    /// Source pages when `source_level >= 1`, full or by reference.
    pub source_pages: Vec<ReqPageSlot>,
    /// The current pages of the target level, full or by reference.
    pub target_pages: Vec<ReqPageSlot>,
}

impl DeltaMergeRequest {
    /// Delta-encodes `req` against the runs the edge knows the cloud
    /// retains (proven by the last applied reply), by memoized page
    /// digest. Levels are scanned in ascending order so the encoding
    /// — and therefore every byte-level stat downstream — is
    /// deterministic across runtimes.
    pub fn delta_against(req: &MergeRequest, retained: &HashMap<u32, RetainedLevel>) -> Self {
        let mut levels: Vec<u32> =
            retained.keys().copied().filter(|l| (1..=255).contains(l)).collect();
        levels.sort_unstable();
        let mut by_digest: HashMap<Digest, (u8, u32)> = HashMap::new();
        for &level in &levels {
            for (i, p) in retained[&level].pages.iter().enumerate() {
                by_digest.entry(p.digest()).or_insert((level as u8, i as u32));
            }
        }
        let mut used: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
        let mut encode = |pages: &[Arc<Page>]| -> Vec<ReqPageSlot> {
            pages
                .iter()
                .map(|p| match by_digest.get(&p.digest()) {
                    Some(&(level, index)) => {
                        used.insert(level as u32);
                        ReqPageSlot::Retained { level, index }
                    }
                    None => ReqPageSlot::Full(Arc::clone(p)),
                })
                .collect()
        };
        let source_pages = encode(&req.source_pages);
        let target_pages = encode(&req.target_pages);
        let retention = used.into_iter().map(|l| (l, retained[&l].fingerprint)).collect();
        DeltaMergeRequest {
            edge: req.edge,
            source_level: req.source_level,
            epoch: req.epoch,
            retention,
            source_l0: req.source_l0.clone(),
            source_pages,
            target_pages,
        }
    }

    /// Rehydrates into the full [`MergeRequest`] by resolving every
    /// reference into the cloud's own retained `Arc`s. `retained` maps
    /// a `(level, fingerprint)` claim to the run it names, or `None`
    /// if the cloud no longer holds it. Any unresolvable claim, a
    /// slot referencing an undeclared level, or an out-of-range index
    /// is a typed [`DecodeError`] — hostile or stale deltas can never
    /// panic the cloud, only earn a resend nack.
    pub fn resolve<'a>(
        &self,
        retained: impl Fn(u32, &Digest) -> Option<&'a [Arc<Page>]>,
    ) -> Result<MergeRequest, DecodeError> {
        let mut runs: HashMap<u32, &[Arc<Page>]> = HashMap::with_capacity(self.retention.len());
        for (level, fp) in &self.retention {
            let run = retained(*level, fp)
                .ok_or(DecodeError::Malformed("merge request retention claim stale or unknown"))?;
            runs.insert(*level, run);
        }
        let rehydrate = |slots: &[ReqPageSlot]| -> Result<Vec<Arc<Page>>, DecodeError> {
            slots
                .iter()
                .map(|slot| match slot {
                    ReqPageSlot::Full(p) => Ok(Arc::clone(p)),
                    ReqPageSlot::Retained { level, index } => {
                        let run = runs.get(&(*level as u32)).ok_or(DecodeError::Malformed(
                            "merge request references an undeclared level",
                        ))?;
                        run.get(*index as usize)
                            .map(Arc::clone)
                            .ok_or(DecodeError::Malformed("merge request reuse index out of range"))
                    }
                })
                .collect()
        };
        Ok(MergeRequest {
            edge: self.edge,
            source_level: self.source_level,
            source_l0: self.source_l0.clone(),
            source_pages: rehydrate(&self.source_pages)?,
            target_pages: rehydrate(&self.target_pages)?,
            epoch: self.epoch,
        })
    }

    /// Pages travelling as references (source + target slots).
    pub fn reused_pages(&self) -> u64 {
        self.source_pages
            .iter()
            .chain(self.target_pages.iter())
            .filter(|s| matches!(s, ReqPageSlot::Retained { .. }))
            .count() as u64
    }

    /// Pages travelling in full (L0 blocks plus full slots).
    pub fn full_pages(&self) -> u64 {
        self.source_l0.len() as u64
            + self
                .source_pages
                .iter()
                .chain(self.target_pages.iter())
                .filter(|s| matches!(s, ReqPageSlot::Full(_)))
                .count() as u64
    }

    /// Bytes shipped edge→cloud for this delta request: full pages
    /// plus 5 bytes per reference plus 36 per retention claim — the
    /// number the `merge_request_bytes` bench tracks against
    /// [`MergeRequest::wire_size`].
    pub fn wire_size(&self) -> u64 {
        let l0: u64 = self.source_l0.iter().map(|p| p.wire_size()).sum();
        let slots = |s: &[ReqPageSlot]| -> u64 {
            s.iter()
                .map(|s| match s {
                    ReqPageSlot::Full(p) => 1 + p.wire_size(),
                    ReqPageSlot::Retained { .. } => 5,
                })
                .sum()
        };
        32 + 36 * self.retention.len() as u64
            + l0
            + slots(&self.source_pages)
            + slots(&self.target_pages)
    }

    /// Exact byte length of [`DeltaMergeRequest::encode_into`]'s
    /// output.
    pub fn encoded_len(&self) -> usize {
        let slots = |s: &[ReqPageSlot]| -> usize {
            8 + s
                .iter()
                .map(|s| match s {
                    ReqPageSlot::Full(p) => 1 + p.encoded_len(),
                    ReqPageSlot::Retained { .. } => 1 + 4,
                })
                .sum::<usize>()
        };
        let l0: usize = self.source_l0.iter().map(|p| p.encoded_len()).sum();
        8 + 4
            + 8
            + (8 + (4 + 32) * self.retention.len())
            + (8 + l0)
            + slots(&self.source_pages)
            + slots(&self.target_pages)
    }

    /// Canonical nestable wire encoding.
    pub fn encode_into(&self, enc: &mut wedge_log::Encoder) {
        enc.put_u64(self.edge.0).put_u32(self.source_level).put_u64(self.epoch);
        enc.put_u64(self.retention.len() as u64);
        for (level, fp) in &self.retention {
            enc.put_u32(*level);
            enc.put_digest(fp);
        }
        enc.put_u64(self.source_l0.len() as u64);
        for p in &self.source_l0 {
            p.encode_into(enc);
        }
        encode_req_slots(&self.source_pages, enc);
        encode_req_slots(&self.target_pages, enc);
    }

    /// Inverse of [`DeltaMergeRequest::encode_into`]. Context-free:
    /// references stay references until [`DeltaMergeRequest::resolve`]
    /// is handed the cloud's retained runs.
    pub fn decode_from(dec: &mut wedge_log::Decoder<'_>) -> Result<Self, DecodeError> {
        let edge = IdentityId(dec.get_u64()?);
        let source_level = dec.get_u32()?;
        let epoch = dec.get_u64()?;
        let n_ret = dec.get_count(36)?;
        let mut retention = Vec::with_capacity(n_ret);
        for _ in 0..n_ret {
            let level = dec.get_u32()?;
            retention.push((level, dec.get_digest()?));
        }
        let n_l0 = dec.get_count(8)?;
        let mut source_l0 = Vec::with_capacity(n_l0);
        for _ in 0..n_l0 {
            source_l0.push(L0Page::decode_from(dec)?);
        }
        let source_pages = decode_req_slots(dec)?;
        let target_pages = decode_req_slots(dec)?;
        Ok(DeltaMergeRequest {
            edge,
            source_level,
            epoch,
            retention,
            source_l0,
            source_pages,
            target_pages,
        })
    }
}

/// Why the cloud refused a merge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MergeError {
    /// The edge is not initialized in the cloud index.
    UnknownEdge(IdentityId),
    /// The edge's epoch is stale or from the future.
    EpochMismatch { expected: u64, got: u64 },
    /// An L0 page's block was never certified — the edge is trying to
    /// merge data the cloud never saw a digest for.
    UncertifiedBlock(BlockId),
    /// An L0 page's block digest does not match the certified digest —
    /// equivocation at merge time.
    BlockDigestMismatch(BlockId),
    /// Source pages do not hash to the root the cloud signed.
    SourceRootMismatch,
    /// Target pages do not hash to the root the cloud signed.
    TargetRootMismatch,
    /// Merging out of the deepest level is impossible.
    BadLevel(u32),
    /// The L0 page's advertised records don't match its block content.
    L0RecordsMismatch(BlockId),
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for MergeError {}

/// Streaming k-way merge over runs each sorted by `(key asc, version
/// desc)`: emits the newest version of every key in ascending key
/// order, cloning only the surviving records. `drop_tombstones` skips
/// deleted keys (the deepest-level rule). This replaces the old
/// materialize-all + `sort_by` + `dedup_by` compaction: O(n log k)
/// comparisons on keys instead of O(n log n) on full records, and no
/// clones of shadowed versions.
pub fn kway_merge_newest(runs: &[&[KvRecord]], drop_tombstones: bool) -> Vec<KvRecord> {
    // Max-heap of Reverse(ordering key) ⇒ pops the smallest key; among
    // equal keys the largest version; run index breaks exact ties
    // deterministically.
    type HeapKey = Reverse<(u64, Reverse<crate::kv::Version>, usize)>;
    let mut heap: BinaryHeap<HeapKey> = BinaryHeap::with_capacity(runs.len());
    let mut cursors: Vec<usize> = vec![0; runs.len()];
    let push_head = |heap: &mut BinaryHeap<HeapKey>, cursors: &[usize], run_idx: usize| {
        if let Some(r) = runs[run_idx].get(cursors[run_idx]) {
            heap.push(Reverse((r.key, Reverse(r.version), run_idx)));
        }
    };
    for i in 0..runs.len() {
        push_head(&mut heap, &cursors, i);
    }
    let mut out = Vec::with_capacity(runs.iter().map(|r| r.len()).sum());
    let mut last_key: Option<u64> = None;
    while let Some(Reverse((key, _, run_idx))) = heap.pop() {
        let rec = &runs[run_idx][cursors[run_idx]];
        cursors[run_idx] += 1;
        push_head(&mut heap, &cursors, run_idx);
        if last_key == Some(key) {
            continue; // an older (or duplicate) version: shadowed
        }
        last_key = Some(key);
        if drop_tombstones && rec.value.is_none() {
            continue;
        }
        out.push(rec.clone());
    }
    out
}

/// Rebuilds the target level for `req`, reusing (as `Arc` clones)
/// every target page the merge does not touch.
///
/// A target page is *dirty* — and must be rebuilt — iff a source
/// record's key falls in its range, or the merge targets the deepest
/// level and the page holds a tombstone that must now drop. Contiguous
/// dirty pages form a region whose records (dirty target pages plus
/// the source records within the region's range) are k-way merged and
/// re-split inside the region's original boundaries, so the clean
/// pages on either side keep their exact ranges. Clean pages pass
/// through untouched — same records, same range, same `created_at_ns`,
/// therefore the same memoized digest — which is what lets the wire
/// codec ship them as [`PageDelta::Reused`] references.
///
/// A pure level move (level ≥ 1 into an empty target, nothing to
/// drop) reuses the source pages verbatim: they already form a valid
/// range-covering level.
fn rebuilt_target_pages(
    req: &MergeRequest,
    deepest: bool,
    page_capacity: usize,
    now_ns: u64,
    pool: &Pool,
) -> Vec<Arc<Page>> {
    let source_runs: Vec<&[KvRecord]> = req
        .source_l0
        .iter()
        .map(|p| p.records())
        .chain(req.source_pages.iter().map(|p| p.records()))
        .collect();
    let targets = &req.target_pages;
    if targets.is_empty() {
        let tombstones = || source_runs.iter().any(|run| run.iter().any(|r| r.value.is_none()));
        if req.source_l0.is_empty() && !req.source_pages.is_empty() && !(deepest && tombstones()) {
            return req.source_pages.clone();
        }
        let merged = kway_merge_newest(&source_runs, deepest);
        return split_into_pages(merged, page_capacity, now_ns);
    }
    // Mark dirty pages. Every source key lands in exactly one target
    // page (the level covers [0, ∞]), found by binary search.
    let mut dirty = vec![false; targets.len()];
    for run in &source_runs {
        for r in run.iter() {
            if let Some((idx, _)) = find_covering(targets, r.key) {
                dirty[idx] = true;
            }
        }
    }
    // Deepest-level target pages can never hold tombstones: every
    // record there came out of a previous merge into the deepest level
    // — either a k-way merge with `drop_tombstones` or the tombstone-
    // guarded pure-move path above — and a hostile edge cannot forge
    // target pages past the signed-root check. So no extra dirtying is
    // needed for tombstone dropping; debug builds verify the
    // invariant instead of release builds paying an O(level) scan.
    debug_assert!(
        !deepest || targets.iter().all(|p| p.records().iter().all(|r| r.value.is_some())),
        "deepest-level target page holds a tombstone"
    );
    // Walk the dirty map into slots first: clean pages pass through as
    // the same `Arc`s, and each contiguous dirty run becomes a region.
    // Regions are confined to disjoint key ranges, so their k-way
    // merges and re-splits are independent — the pool rebuilds them on
    // separate lanes and the slot order makes the stitch-back
    // deterministic regardless of which lane finished first.
    enum Slot {
        Clean(usize),
        Region,
    }
    let mut slots = Vec::new();
    let mut regions = Vec::new();
    let mut i = 0;
    while i < targets.len() {
        if !dirty[i] {
            slots.push(Slot::Clean(i));
            i += 1;
            continue;
        }
        let start = i;
        while i < targets.len() && dirty[i] {
            i += 1;
        }
        slots.push(Slot::Region);
        regions.push((start, i));
    }
    let rebuild_region = |&(start, end): &(usize, usize)| -> Vec<Arc<Page>> {
        let (rmin, rmax) = (targets[start].min(), targets[end - 1].max());
        let mut runs: Vec<&[KvRecord]> = targets[start..end].iter().map(|p| p.records()).collect();
        for run in &source_runs {
            let lo = run.partition_point(|r| r.key < rmin);
            let hi = run.partition_point(|r| r.key <= rmax);
            if lo < hi {
                runs.push(&run[lo..hi]);
            }
        }
        let merged = kway_merge_newest(&runs, deepest);
        let pages = split_into_range_pages(merged, page_capacity, now_ns, rmin, rmax);
        if !pool.is_inline() {
            // Memoize the fresh pages' digests while still on this
            // lane — the forest rebuild and the reply's delta encoding
            // both need them, and a memo is idempotent.
            for p in &pages {
                p.digest();
            }
        }
        pages
    };
    let rebuilt: Vec<Vec<Arc<Page>>> = if pool.is_inline() {
        regions.iter().map(rebuild_region).collect()
    } else {
        pool.map(&regions, rebuild_region)
    };
    let mut rebuilt = rebuilt.into_iter();
    let mut out = Vec::with_capacity(targets.len());
    for slot in slots {
        match slot {
            Slot::Clean(i) => out.push(Arc::clone(&targets[i])),
            Slot::Region => out.extend(rebuilt.next().expect("one rebuilt run per region")),
        }
    }
    out
}

/// The roots + global cert an edge starts from.
#[derive(Clone, Debug)]
pub struct InitBundle {
    /// Signed (empty) roots for L1..Ln at epoch 0.
    pub level_roots: Vec<SignedLevelRoot>,
    /// The signed global root at epoch 0.
    pub global: GlobalRootCert,
}

/// Per-edge authoritative index state at the cloud.
#[derive(Clone, Debug)]
pub struct CloudIndexState {
    /// Roots of L1..Ln.
    pub level_roots: Vec<Digest>,
    /// Current epoch (merge count).
    pub epoch: u64,
    /// The last merge processed: the request's
    /// [`MergeRequest::fingerprint`] and the signed result. A retried
    /// request (same fingerprint, one epoch behind — its `MergeRes`
    /// was lost in transit) is answered from here instead of being
    /// rejected as stale, which is what makes edge-side merge retries
    /// self-healing under a lossy transport.
    last_merge: Option<(Digest, MergeResult)>,
    /// The Merkle forest of each level, kept in lockstep with
    /// `level_roots` (`level_forests[i].root() == level_roots[i]`).
    /// Caching it buys two things per merge: request verification is a
    /// leaf-run digest comparison (no hashing at all — digest equality
    /// is content equality), and re-signing patches the forest
    /// incrementally instead of rebuilding O(level) interior nodes.
    level_forests: Vec<MerkleForest>,
    /// The page runs retained per Merkle level for delta-request
    /// resolution: newest last, bounded at **two** (the current run
    /// plus one prior, so a delta retried after its reply was lost —
    /// retention has advanced past the retry's view — still resolves
    /// and hits the replay cache). Older runs are evicted as epochs
    /// advance; losing the cache entirely costs one full-request
    /// resend, never a wedge.
    retained: HashMap<u32, Vec<RetainedLevel>>,
}

/// The cloud node's view of every edge's LSMerkle.
///
/// The cloud is the *only* writer of level roots, which is what lets
/// it verify merge inputs without re-reading any data: pages either
/// hash to a root it signed, or they are forged.
#[derive(Debug)]
pub struct CloudIndex {
    cfg: LsmConfig,
    states: HashMap<IdentityId, CloudIndexState>,
    compaction: CompactionStats,
    /// Worker pool for the embarrassingly-parallel phases of a merge:
    /// digest memoization of wire-decoded pages, L0 record
    /// re-derivation, per-region rebuilds, and forest leaf tagging.
    /// Inline (size 1) by default — results are byte-identical for
    /// every pool size, so this is purely a throughput knob.
    pool: Pool,
}

/// True iff the pages' digest run matches the forest leaf-for-leaf.
/// Digest equality is content equality (collision resistance), so this
/// is equivalent to — and strictly cheaper than — rebuilding the tree
/// and comparing roots: page digests are memoized, so no hashing runs.
fn digest_run_matches(pages: &[Arc<Page>], forest: &MerkleForest) -> bool {
    pages.len() == forest.leaf_count()
        && pages.iter().map(|p| p.digest()).eq(forest.leaves().iter().copied())
}

impl CloudIndex {
    /// Creates a cloud index for the given LSMerkle shape.
    pub fn new(cfg: LsmConfig) -> Self {
        cfg.validate().expect("invalid LSMerkle config");
        CloudIndex {
            cfg,
            states: HashMap::new(),
            compaction: CompactionStats::default(),
            pool: Pool::default(),
        }
    }

    /// The configured shape.
    pub fn config(&self) -> &LsmConfig {
        &self.cfg
    }

    /// Installs the worker pool merge processing fans out on. The
    /// drivers call this with their configured `pool_threads`; the
    /// default is the inline pool, so nothing changes unless asked.
    pub fn set_pool(&mut self, pool: Pool) {
        self.pool = pool;
    }

    /// The installed worker pool.
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// Memoizes, across the pool, every page digest the merge path
    /// will ask for: fingerprinting (replay lookup), run verification,
    /// retention, and the reply's delta encoding all force them.
    /// Pages rehydrated from retained `Arc`s already carry their memo
    /// and cost nothing; wire-decoded pages hash once each, spread
    /// over the lanes. Idempotent, pure, byte-identical at any size.
    pub fn prime_request_digests(&self, req: &MergeRequest) {
        if self.pool.is_inline() {
            return;
        }
        self.pool.for_each(&req.source_l0, |p| {
            p.digest();
        });
        let pages: Vec<&Arc<Page>> =
            req.source_pages.iter().chain(req.target_pages.iter()).collect();
        self.pool.for_each(&pages, |p| {
            p.digest();
        });
    }

    /// Cumulative fold work across every merge this cloud processed.
    pub fn compaction_stats(&self) -> CompactionStats {
        self.compaction
    }

    /// Initializes (or re-issues) the empty index for an edge and
    /// returns the signed roots the edge starts from.
    pub fn init_edge(&mut self, cloud: &Identity, edge: IdentityId, now_ns: u64) -> InitBundle {
        let n = self.cfg.num_merkle_levels();
        let roots: Vec<Digest> = vec![empty_level_root(); n];
        self.states.insert(
            edge,
            CloudIndexState {
                level_roots: roots.clone(),
                epoch: 0,
                last_merge: None,
                level_forests: vec![MerkleForest::empty(); n],
                retained: HashMap::new(),
            },
        );
        let level_roots = (0..n)
            .map(|i| SignedLevelRoot::issue(cloud, edge, (i + 1) as u32, 0, roots[i]))
            .collect();
        let global = GlobalRootCert::issue(cloud, edge, 0, now_ns, compute_global_root(&roots));
        InitBundle { level_roots, global }
    }

    /// The cloud's recorded state for an edge.
    pub fn state(&self, edge: IdentityId) -> Option<&CloudIndexState> {
        self.states.get(&edge)
    }

    /// Re-signs the current global root with a fresh timestamp (the
    /// freshness "no-op" path of §V-D).
    pub fn refresh_global(
        &self,
        cloud: &Identity,
        edge: IdentityId,
        now_ns: u64,
    ) -> Option<GlobalRootCert> {
        let st = self.states.get(&edge)?;
        Some(GlobalRootCert::issue(
            cloud,
            edge,
            st.epoch,
            now_ns,
            compute_global_root(&st.level_roots),
        ))
    }

    /// Idempotent-retry lookup: if `req` is byte-for-byte the merge
    /// this edge's state was last advanced by (fingerprint match, one
    /// epoch behind — its `MergeRes` was lost in transit), returns the
    /// cached signed result without touching any state. Replaying it
    /// is sound, and it is the only way the edge can ever catch up
    /// under a lossy transport. `checked_add` keeps a hostile
    /// `epoch == u64::MAX` a clean miss, never an overflow.
    pub fn replay_for(&self, req: &MergeRequest) -> Option<MergeResult> {
        let state = self.states.get(&req.edge)?;
        if req.epoch.checked_add(1) != Some(state.epoch) {
            return None;
        }
        let (fp, cached) = state.last_merge.as_ref()?;
        (*fp == req.fingerprint()).then(|| cached.clone())
    }

    /// Resolves a delta-encoded request against this cloud's retained
    /// runs, rehydrating every reference into the cloud's own `Arc`s.
    /// An unknown edge, a stale retention claim, an undeclared level,
    /// or an out-of-range index is a typed [`DecodeError`] — the
    /// engine answers it with a `MergeReqResend` nack, never a panic.
    pub fn resolve_delta_request(
        &self,
        dreq: &DeltaMergeRequest,
    ) -> Result<MergeRequest, DecodeError> {
        let state = self
            .states
            .get(&dreq.edge)
            .ok_or(DecodeError::Malformed("delta merge request from unknown edge"))?;
        dreq.resolve(|level, fp| {
            state
                .retained
                .get(&level)?
                .iter()
                .rev()
                .find(|r| r.fingerprint == *fp)
                .map(|r| r.pages.as_slice())
        })
    }

    /// Drops every retained run for `edge` — a cloud restart or cache
    /// eviction in miniature. The next delta request fails to resolve
    /// and is answered with a full-request resend nack: one extra
    /// round trip, no wedge.
    pub fn evict_retained(&mut self, edge: IdentityId) {
        if let Some(state) = self.states.get_mut(&edge) {
            state.retained.clear();
        }
    }

    /// Verifies and performs a merge, returning the signed result.
    /// A repeated request is a stale-epoch error here — retries are
    /// answered through [`CloudIndex::replay_for`], which the caller
    /// consults first.
    pub fn process_merge(
        &mut self,
        cloud: &Identity,
        ledger: &CertLedger,
        req: &MergeRequest,
        now_ns: u64,
    ) -> Result<MergeResult, MergeError> {
        let n_levels = self.cfg.num_merkle_levels();
        let target_level = req.source_level + 1;
        if target_level as usize > n_levels {
            return Err(MergeError::BadLevel(req.source_level));
        }
        let state = self.states.get(&req.edge).ok_or(MergeError::UnknownEdge(req.edge))?;
        if state.epoch != req.epoch {
            return Err(MergeError::EpochMismatch { expected: state.epoch, got: req.epoch });
        }
        // Hash every shipped page across the pool before the serial
        // verification below forces the digests one by one.
        self.prime_request_digests(req);
        let pool = self.pool.clone();

        // --- Verify sources ---
        if req.source_level == 0 {
            // `matches_block` re-derives each block's records — the
            // expensive half of L0 verification — so precompute the
            // verdicts across the pool. They are consumed in page
            // order below, keeping error precedence identical.
            let records_ok: Option<Vec<bool>> =
                (!pool.is_inline()).then(|| pool.map(&req.source_l0, |p| p.matches_block()));
            for (i, page) in req.source_l0.iter().enumerate() {
                // Memoized: the block is hashed at most once per page
                // lifetime, even across certify → merge → proof.
                let digest = page.digest();
                match ledger.lookup(req.edge, page.block().id) {
                    None => return Err(MergeError::UncertifiedBlock(page.block().id)),
                    Some(d) if *d != digest => {
                        return Err(MergeError::BlockDigestMismatch(page.block().id))
                    }
                    Some(_) => {}
                }
                // Never trust the edge's decoded records; re-derive.
                let ok = match &records_ok {
                    Some(v) => v[i],
                    None => page.matches_block(),
                };
                if !ok {
                    return Err(MergeError::L0RecordsMismatch(page.block().id));
                }
            }
        } else {
            let idx = (req.source_level - 1) as usize;
            // The shipped pages are authentic iff their digest run
            // matches the cached forest leaf-for-leaf (digest equality
            // *is* content equality): the forest's leaves are exactly
            // the page digests whose root the cloud last signed, so
            // this is the old root comparison with zero hashing.
            if !digest_run_matches(&req.source_pages, &state.level_forests[idx]) {
                return Err(MergeError::SourceRootMismatch);
            }
        }

        // --- Verify target ---
        let t_idx = (target_level - 1) as usize;
        if !digest_run_matches(&req.target_pages, &state.level_forests[t_idx]) {
            return Err(MergeError::TargetRootMismatch);
        }

        // --- Merge: streaming k-way over the already-sorted runs,
        // confined to the dirty regions — pages the source does not
        // touch are *reused* (the same `Arc`s the request shipped), so
        // the reply's delta encoding ships only what changed.
        let deepest = target_level as usize == n_levels;
        let mut new_pages =
            rebuilt_target_pages(req, deepest, self.cfg.page_capacity, now_ns, &pool);

        // --- Compact: an *empty-source* request is the background
        // compactor asking for a whole-level fold — nothing was merged,
        // so every `Arc` above was reused and the fold is the only
        // change. Organic merges do NOT fold: their dirty regions are
        // already re-split to capacity by the rebuild, and folding the
        // clean remainder would rehash — and re-ship, breaking the
        // reply's delta encoding — pages the merge never touched.
        let is_compaction = req.source_l0.is_empty() && req.source_pages.is_empty();
        let fold_stats = if is_compaction {
            let fold = fold_partial_pages(&new_pages, self.cfg.page_capacity, now_ns);
            new_pages = fold.pages;
            fold.stats
        } else {
            CompactionStats::default()
        };
        debug_assert!(check_level_ranges(&new_pages).is_ok());
        if !pool.is_inline() {
            // Fresh pages from a full merge or a compaction fold have
            // no digest memo yet; hash them across the lanes before
            // the forest build and delta encoding force them serially.
            pool.for_each(&new_pages, |p| {
                p.digest();
            });
        }

        // --- Re-sign roots. The target forest is patched from the
        // cached one: O(k log n) interior hashes for a k-page change,
        // not O(level) — this is what keeps a long-lived store's merge
        // cost proportional to the delta.
        let state = self.states.get_mut(&req.edge).expect("checked above");
        let new_forest = forest_over_reusing_pooled(&new_pages, &state.level_forests[t_idx], &pool);
        let new_epoch = state.epoch + 1;
        state.epoch = new_epoch;
        state.level_roots[t_idx] = new_forest.root();
        state.level_forests[t_idx] = new_forest;
        self.compaction.absorb(fold_stats);
        let new_source_root = if req.source_level >= 1 {
            let s_idx = (req.source_level - 1) as usize;
            state.level_roots[s_idx] = empty_level_root();
            state.level_forests[s_idx] = MerkleForest::empty();
            Some(SignedLevelRoot::issue(
                cloud,
                req.edge,
                req.source_level,
                new_epoch,
                state.level_roots[s_idx],
            ))
        } else {
            None
        };
        let new_target_root = SignedLevelRoot::issue(
            cloud,
            req.edge,
            target_level,
            new_epoch,
            state.level_roots[t_idx],
        );
        let all_level_roots = state.level_roots.clone();
        let global = GlobalRootCert::issue(
            cloud,
            req.edge,
            new_epoch,
            now_ns,
            compute_global_root(&all_level_roots),
        );
        let result = MergeResult {
            edge: req.edge,
            source_level: req.source_level,
            new_target_pages: new_pages,
            new_source_root,
            new_target_root,
            all_level_roots,
            global,
            new_epoch,
        };
        // Retain the rebuilt target run (and the drained source's
        // now-empty run) so the *next* request can reference these
        // pages instead of re-shipping them. Newest last, capped at
        // two runs per level — see `CloudIndexState::retained`.
        let mut retain = |level: u32, pages: &[Arc<Page>]| {
            let runs = state.retained.entry(level).or_default();
            runs.push(RetainedLevel::over(req.edge, level, pages));
            if runs.len() > 2 {
                runs.remove(0);
            }
        };
        retain(target_level, &result.new_target_pages);
        if req.source_level >= 1 {
            retain(req.source_level, &[]);
        }
        state.last_merge = Some((req.fingerprint(), result.clone()));
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::{kv_entry, KvOp};
    use wedge_log::{Block, CertOutcome};

    fn setup() -> (Identity, CertLedger, CloudIndex, IdentityId) {
        let cloud = Identity::derive("cloud", 0);
        let ledger = CertLedger::new();
        let index = CloudIndex::new(LsmConfig::exposition());
        (cloud, ledger, index, IdentityId(9))
    }

    fn kv_block(edge: IdentityId, bid: u64, kvs: &[(u64, &[u8])]) -> Block {
        let client = Identity::derive("client", 1);
        let entries = kvs
            .iter()
            .enumerate()
            .map(|(i, (k, v))| kv_entry(&client, bid * 100 + i as u64, &KvOp::put(*k, v.to_vec())))
            .collect();
        Block { edge, id: BlockId(bid), entries, sealed_at_ns: bid }
    }

    fn certified_l0(
        ledger: &mut CertLedger,
        edge: IdentityId,
        bid: u64,
        kvs: &[(u64, &[u8])],
    ) -> Arc<L0Page> {
        let block = kv_block(edge, bid, kvs);
        assert_eq!(ledger.offer(edge, block.id, block.digest()), CertOutcome::Certified);
        Arc::new(L0Page::from_block(block))
    }

    #[test]
    fn l0_merge_produces_sorted_level() {
        let (cloud, mut ledger, mut index, edge) = setup();
        index.init_edge(&cloud, edge, 0);
        let p0 = certified_l0(&mut ledger, edge, 0, &[(5, b"a"), (1, b"b")]);
        let p1 = certified_l0(&mut ledger, edge, 1, &[(5, b"c"), (9, b"d")]);
        let req = MergeRequest {
            edge,
            source_level: 0,
            source_l0: vec![p0, p1],
            source_pages: vec![],
            target_pages: vec![],
            epoch: 0,
        };
        let res = index.process_merge(&cloud, &ledger, &req, 1000).unwrap();
        assert_eq!(res.new_epoch, 1);
        assert!(check_level_ranges(&res.new_target_pages).is_ok());
        let all: Vec<(u64, Vec<u8>)> = res
            .new_target_pages
            .iter()
            .flat_map(|p| p.records().iter())
            .map(|r| (r.key, r.value.clone().unwrap()))
            .collect();
        // Key 5 resolved to the newer block's value "c".
        assert_eq!(all, vec![(1, b"b".to_vec()), (5, b"c".to_vec()), (9, b"d".to_vec())]);
    }

    #[test]
    fn uncertified_block_rejected() {
        let (cloud, ledger, mut index, edge) = setup();
        index.init_edge(&cloud, edge, 0);
        let page = Arc::new(L0Page::from_block(kv_block(edge, 0, &[(1, b"x")])));
        let req = MergeRequest {
            edge,
            source_level: 0,
            source_l0: vec![page],
            source_pages: vec![],
            target_pages: vec![],
            epoch: 0,
        };
        assert_eq!(
            index.process_merge(&cloud, &ledger, &req, 0),
            Err(MergeError::UncertifiedBlock(BlockId(0)))
        );
    }

    #[test]
    fn tampered_block_rejected() {
        let (cloud, mut ledger, mut index, edge) = setup();
        index.init_edge(&cloud, edge, 0);
        // Certify an honest block, then try to merge a different one
        // with the same id.
        let honest = kv_block(edge, 0, &[(1, b"honest")]);
        ledger.offer(edge, honest.id, honest.digest());
        let lying = Arc::new(L0Page::from_block(kv_block(edge, 0, &[(1, b"lying")])));
        let req = MergeRequest {
            edge,
            source_level: 0,
            source_l0: vec![lying],
            source_pages: vec![],
            target_pages: vec![],
            epoch: 0,
        };
        assert_eq!(
            index.process_merge(&cloud, &ledger, &req, 0),
            Err(MergeError::BlockDigestMismatch(BlockId(0)))
        );
    }

    #[test]
    fn stale_epoch_rejected_but_identical_retry_replayed() {
        let (cloud, mut ledger, mut index, edge) = setup();
        index.init_edge(&cloud, edge, 0);
        let p0 = certified_l0(&mut ledger, edge, 0, &[(1, b"a")]);
        let req = MergeRequest {
            edge,
            source_level: 0,
            source_l0: vec![p0.clone()],
            source_pages: vec![],
            target_pages: vec![],
            epoch: 0,
        };
        let first = index.process_merge(&cloud, &ledger, &req, 0).unwrap();
        // A byte-identical retry (its MergeRes was lost in transit) is
        // answered from the replay cache — this is what makes edge
        // merge retries self-healing — while `process_merge` itself
        // still rejects the stale epoch.
        assert_eq!(index.replay_for(&req), Some(first.clone()));
        assert_eq!(
            index.process_merge(&cloud, &ledger, &req, 99),
            Err(MergeError::EpochMismatch { expected: 1, got: 0 })
        );
        // A *different* request at the stale epoch never replays.
        let p1 = certified_l0(&mut ledger, edge, 1, &[(2, b"b")]);
        let other = MergeRequest { source_l0: vec![p1], ..req.clone() };
        assert_eq!(index.replay_for(&other), None);
        assert_eq!(
            index.process_merge(&cloud, &ledger, &other, 0),
            Err(MergeError::EpochMismatch { expected: 1, got: 0 })
        );
        // A hostile epoch of u64::MAX is a clean miss, not an overflow.
        let hostile = MergeRequest { epoch: u64::MAX, ..req.clone() };
        assert_eq!(index.replay_for(&hostile), None);
        // And a two-epochs-stale replay never matches the cache.
        let req2 = MergeRequest {
            edge,
            source_level: 1,
            source_l0: vec![],
            source_pages: first.new_target_pages.clone(),
            target_pages: vec![],
            epoch: 1,
        };
        index.process_merge(&cloud, &ledger, &req2, 0).unwrap();
        assert_eq!(index.replay_for(&req), None, "two epochs stale: no replay");
        assert_eq!(
            index.process_merge(&cloud, &ledger, &req, 0),
            Err(MergeError::EpochMismatch { expected: 2, got: 0 })
        );
    }

    #[test]
    fn forged_target_pages_rejected() {
        let (cloud, mut ledger, mut index, edge) = setup();
        index.init_edge(&cloud, edge, 0);
        let p0 = certified_l0(&mut ledger, edge, 0, &[(1, b"a")]);
        // Target level is empty at the cloud; sending a forged page
        // must fail the root check.
        let forged = Arc::new(Page::new(
            0,
            u64::MAX,
            vec![KvRecord {
                key: 3,
                version: crate::kv::Version { bid: 0, pos: 0 },
                value: Some(b"evil".to_vec()),
            }],
            0,
        ));
        let req = MergeRequest {
            edge,
            source_level: 0,
            source_l0: vec![p0],
            source_pages: vec![],
            target_pages: vec![forged],
            epoch: 0,
        };
        assert_eq!(
            index.process_merge(&cloud, &ledger, &req, 0),
            Err(MergeError::TargetRootMismatch)
        );
    }

    #[test]
    fn cascading_merge_level1_to_level2() {
        let (cloud, mut ledger, mut index, edge) = setup();
        index.init_edge(&cloud, edge, 0);
        // First: L0 -> L1.
        let p0 = certified_l0(&mut ledger, edge, 0, &[(1, b"a"), (2, b"b")]);
        let req = MergeRequest {
            edge,
            source_level: 0,
            source_l0: vec![p0],
            source_pages: vec![],
            target_pages: vec![],
            epoch: 0,
        };
        let res1 = index.process_merge(&cloud, &ledger, &req, 10).unwrap();
        // Then: L1 -> L2 (deepest in the exposition config).
        let req2 = MergeRequest {
            edge,
            source_level: 1,
            source_l0: vec![],
            source_pages: res1.new_target_pages.clone(),
            target_pages: vec![],
            epoch: res1.new_epoch,
        };
        let res2 = index.process_merge(&cloud, &ledger, &req2, 20).unwrap();
        assert_eq!(res2.new_epoch, 2);
        assert_eq!(res2.new_source_root.as_ref().unwrap().root, empty_level_root());
        let keys: Vec<u64> =
            res2.new_target_pages.iter().flat_map(|p| p.records().iter().map(|r| r.key)).collect();
        assert_eq!(keys, vec![1, 2]);
    }

    #[test]
    fn tombstones_dropped_only_at_deepest_level() {
        let (cloud, mut ledger, mut index, edge) = setup();
        index.init_edge(&cloud, edge, 0);
        let client = Identity::derive("client", 1);
        let entries = vec![
            kv_entry(&client, 0, &KvOp::put(1, b"v".to_vec())),
            kv_entry(&client, 1, &KvOp::delete(2)),
        ];
        let block = Block { edge, id: BlockId(0), entries, sealed_at_ns: 0 };
        ledger.offer(edge, block.id, block.digest());
        let req = MergeRequest {
            edge,
            source_level: 0,
            source_l0: vec![Arc::new(L0Page::from_block(block))],
            source_pages: vec![],
            target_pages: vec![],
            epoch: 0,
        };
        // L0 -> L1: tombstone for key 2 survives (L1 is not deepest).
        let res1 = index.process_merge(&cloud, &ledger, &req, 0).unwrap();
        let has_tombstone = res1
            .new_target_pages
            .iter()
            .flat_map(|p| p.records().iter())
            .any(|r| r.key == 2 && r.value.is_none());
        assert!(has_tombstone);
        // L1 -> L2 (deepest): tombstone dropped.
        let req2 = MergeRequest {
            edge,
            source_level: 1,
            source_l0: vec![],
            source_pages: res1.new_target_pages.clone(),
            target_pages: vec![],
            epoch: res1.new_epoch,
        };
        let res2 = index.process_merge(&cloud, &ledger, &req2, 0).unwrap();
        let keys: Vec<u64> =
            res2.new_target_pages.iter().flat_map(|p| p.records().iter().map(|r| r.key)).collect();
        assert_eq!(keys, vec![1]);
    }

    /// The incremental rebuild: target pages the source does not touch
    /// come back as the *request's own* `Arc`s — same records, same
    /// range, same `created_at_ns`, same memoized digest — which is
    /// what the wire delta encodes as references.
    #[test]
    fn untouched_target_pages_are_reused_by_pointer() {
        let cloud = Identity::derive("cloud", 0);
        let mut ledger = CertLedger::new();
        let mut index =
            CloudIndex::new(LsmConfig { level_thresholds: vec![2, 100], page_capacity: 4 });
        let edge = IdentityId(9);
        index.init_edge(&cloud, edge, 0);
        // Merge 1: keys 0..8 → two L1 pages of 4 records each.
        let kvs: Vec<(u64, &[u8])> = (0..8u64).map(|k| (k, b"v".as_ref())).collect();
        let p0 = certified_l0(&mut ledger, edge, 0, &kvs[..4]);
        let p1 = certified_l0(&mut ledger, edge, 1, &kvs[4..]);
        let req1 = MergeRequest {
            edge,
            source_level: 0,
            source_l0: vec![p0, p1],
            source_pages: vec![],
            target_pages: vec![],
            epoch: 0,
        };
        let res1 = index.process_merge(&cloud, &ledger, &req1, 10).unwrap();
        assert_eq!(res1.new_target_pages.len(), 2);
        // Merge 2: one new key far to the right — only the last page's
        // range is dirty.
        let touch = certified_l0(&mut ledger, edge, 2, &[(1_000, b"t")]);
        let req2 = MergeRequest {
            edge,
            source_level: 0,
            source_l0: vec![touch],
            source_pages: vec![],
            target_pages: res1.new_target_pages.clone(),
            epoch: res1.new_epoch,
        };
        let res2 = index.process_merge(&cloud, &ledger, &req2, 20).unwrap();
        assert!(
            Arc::ptr_eq(&res2.new_target_pages[0], &req2.target_pages[0]),
            "clean page reused as the same Arc"
        );
        assert!(
            !Arc::ptr_eq(&res2.new_target_pages[1], &req2.target_pages[1]),
            "dirty region rebuilt"
        );
        assert!(check_level_ranges(&res2.new_target_pages).is_ok());
        // The delta reply names exactly that sharing.
        let delta = DeltaMergeResult::delta_against(&res2, &req2);
        assert_eq!(delta.reused_pages(), 1);
        assert_eq!(delta.pages[0], PageDelta::Reused(0));
        let resolved = delta.resolve(&req2).unwrap();
        assert_eq!(resolved, res2);
    }

    /// A pure level move (level ≥ 1 into an empty target, nothing to
    /// drop) reuses the source pages verbatim: the reply is all
    /// references.
    #[test]
    fn pure_level_move_reuses_source_pages() {
        let (cloud, mut ledger, mut index, edge) = setup();
        index.init_edge(&cloud, edge, 0);
        let p0 = certified_l0(&mut ledger, edge, 0, &[(1, b"a"), (2, b"b")]);
        let req1 = MergeRequest {
            edge,
            source_level: 0,
            source_l0: vec![p0],
            source_pages: vec![],
            target_pages: vec![],
            epoch: 0,
        };
        let res1 = index.process_merge(&cloud, &ledger, &req1, 10).unwrap();
        // L1 → empty L2: no tombstones, so the pages move as-is.
        let req2 = MergeRequest {
            edge,
            source_level: 1,
            source_l0: vec![],
            source_pages: res1.new_target_pages.clone(),
            target_pages: vec![],
            epoch: res1.new_epoch,
        };
        let res2 = index.process_merge(&cloud, &ledger, &req2, 20).unwrap();
        assert_eq!(res2.new_target_pages.len(), req2.source_pages.len());
        for (new, old) in res2.new_target_pages.iter().zip(&req2.source_pages) {
            assert!(Arc::ptr_eq(new, old), "pure move reuses the source Arc");
        }
        let delta = DeltaMergeResult::delta_against(&res2, &req2);
        assert_eq!(delta.full_pages(), 0, "a pure move ships zero pages");
        assert_eq!(delta.resolve(&req2).unwrap(), res2);
    }

    #[test]
    fn refresh_global_updates_timestamp_only() {
        let (cloud, _ledger, mut index, edge) = setup();
        let init = index.init_edge(&cloud, edge, 100);
        let refreshed = index.refresh_global(&cloud, edge, 500).unwrap();
        assert_eq!(refreshed.root, init.global.root);
        assert_eq!(refreshed.epoch, init.global.epoch);
        assert_eq!(refreshed.timestamp_ns, 500);
    }

    #[test]
    fn merge_out_of_deepest_level_rejected() {
        let (cloud, ledger, mut index, edge) = setup();
        index.init_edge(&cloud, edge, 0);
        let req = MergeRequest {
            edge,
            source_level: 2, // exposition config has merkle levels 1..2
            source_l0: vec![],
            source_pages: vec![],
            target_pages: vec![],
            epoch: 0,
        };
        assert_eq!(index.process_merge(&cloud, &ledger, &req, 0), Err(MergeError::BadLevel(2)));
    }

    #[test]
    fn unknown_edge_rejected() {
        let (cloud, ledger, mut index, edge) = setup();
        let req = MergeRequest {
            edge,
            source_level: 0,
            source_l0: vec![],
            source_pages: vec![],
            target_pages: vec![],
            epoch: 0,
        };
        assert_eq!(
            index.process_merge(&cloud, &ledger, &req, 0),
            Err(MergeError::UnknownEdge(edge))
        );
    }

    /// Builds a two-page L1 via merge 1, then a touch request whose
    /// target pages are exactly the run the cloud now retains —
    /// the shape every delta-request test starts from.
    fn retained_setup() -> (Identity, CertLedger, CloudIndex, IdentityId, MergeRequest, MergeResult)
    {
        let cloud = Identity::derive("cloud", 0);
        let mut ledger = CertLedger::new();
        let mut index =
            CloudIndex::new(LsmConfig { level_thresholds: vec![2, 100], page_capacity: 4 });
        let edge = IdentityId(9);
        index.init_edge(&cloud, edge, 0);
        let kvs: Vec<(u64, &[u8])> = (0..8u64).map(|k| (k, b"v".as_ref())).collect();
        let p0 = certified_l0(&mut ledger, edge, 0, &kvs[..4]);
        let p1 = certified_l0(&mut ledger, edge, 1, &kvs[4..]);
        let req1 = MergeRequest {
            edge,
            source_level: 0,
            source_l0: vec![p0, p1],
            source_pages: vec![],
            target_pages: vec![],
            epoch: 0,
        };
        let res1 = index.process_merge(&cloud, &ledger, &req1, 10).unwrap();
        assert_eq!(res1.new_target_pages.len(), 2);
        let touch = certified_l0(&mut ledger, edge, 2, &[(1_000, b"t")]);
        let req2 = MergeRequest {
            edge,
            source_level: 0,
            source_l0: vec![touch],
            source_pages: vec![],
            target_pages: res1.new_target_pages.clone(),
            epoch: res1.new_epoch,
        };
        (cloud, ledger, index, edge, req2, res1)
    }

    /// The edge's view of what the cloud retains after `res1`.
    fn edge_view(edge: IdentityId, res1: &MergeResult) -> HashMap<u32, RetainedLevel> {
        let mut view = HashMap::new();
        view.insert(1, RetainedLevel::over(edge, 1, &res1.new_target_pages));
        view
    }

    #[test]
    fn delta_request_references_resolve_to_cloud_arcs() {
        let (cloud, ledger, mut index, edge, req2, res1) = retained_setup();
        let dreq = DeltaMergeRequest::delta_against(&req2, &edge_view(edge, &res1));
        // Both target pages are references; only the L0 block ships.
        assert_eq!(dreq.reused_pages(), 2);
        assert_eq!(dreq.full_pages(), 1);
        assert_eq!(dreq.retention, vec![(1, retention_fingerprint(edge, 1, &req2.target_pages))]);
        assert!(dreq.wire_size() < req2.wire_size());
        let resolved = index.resolve_delta_request(&dreq).unwrap();
        assert_eq!(resolved, req2);
        // Same fingerprint ⇒ the replay cache keyed on the resolved
        // request behaves identically for delta and full retries.
        assert_eq!(resolved.fingerprint(), req2.fingerprint());
        // References rehydrate into the cloud's *own* retained Arcs.
        let cloud_run = &index.state(edge).unwrap().retained.get(&1).unwrap().last().unwrap().pages;
        for (r, c) in resolved.target_pages.iter().zip(cloud_run) {
            assert!(Arc::ptr_eq(r, c), "resolution shares the cloud's Arc");
        }
        // Codec round-trip preserves the delta exactly.
        let mut enc = wedge_log::Encoder::default();
        dreq.encode_into(&mut enc);
        let bytes = enc.finish();
        let mut dec = wedge_log::Decoder::new(&bytes);
        assert_eq!(DeltaMergeRequest::decode_from(&mut dec).unwrap(), dreq);
        dec.finish().unwrap();
        // And the resolved request merges.
        index.process_merge(&cloud, &ledger, &resolved, 20).unwrap();
    }

    #[test]
    fn stale_or_hostile_delta_requests_are_typed_errors() {
        let (_cloud, _ledger, mut index, edge, req2, res1) = retained_setup();
        let view = edge_view(edge, &res1);
        let dreq = DeltaMergeRequest::delta_against(&req2, &view);

        // Stale / forged retention claim.
        let mut stale = dreq.clone();
        stale.retention[0].1 = wedge_crypto::sha256(b"not the retained run");
        assert_eq!(
            index.resolve_delta_request(&stale),
            Err(DecodeError::Malformed("merge request retention claim stale or unknown"))
        );
        // Reference into a level the request never claimed.
        let mut undeclared = dreq.clone();
        undeclared.retention.clear();
        assert_eq!(
            index.resolve_delta_request(&undeclared),
            Err(DecodeError::Malformed("merge request references an undeclared level"))
        );
        // Out-of-range index.
        let mut hostile = dreq.clone();
        hostile.target_pages[0] = ReqPageSlot::Retained { level: 1, index: u32::MAX };
        assert_eq!(
            index.resolve_delta_request(&hostile),
            Err(DecodeError::Malformed("merge request reuse index out of range"))
        );
        // Unknown edge.
        let mut stranger = dreq.clone();
        stranger.edge = IdentityId(404);
        assert_eq!(
            index.resolve_delta_request(&stranger),
            Err(DecodeError::Malformed("delta merge request from unknown edge"))
        );
        // Evicted cache (cloud restart in miniature): same delta that
        // resolved fine a moment ago now earns a typed error.
        assert!(index.resolve_delta_request(&dreq).is_ok());
        index.evict_retained(edge);
        assert_eq!(
            index.resolve_delta_request(&dreq),
            Err(DecodeError::Malformed("merge request retention claim stale or unknown"))
        );
    }

    /// A delta retried after its reply was lost references runs that
    /// retention has since advanced past — the bounded one-prior-run
    /// window is exactly what keeps that retry resolvable, and the
    /// resolved fingerprint is what lets the replay cache answer it.
    #[test]
    fn delta_retry_after_lost_reply_resolves_against_prior_run_and_replays() {
        let (cloud, ledger, mut index, edge, req2, res1) = retained_setup();
        let dreq = DeltaMergeRequest::delta_against(&req2, &edge_view(edge, &res1));
        let resolved = index.resolve_delta_request(&dreq).unwrap();
        let res2 = index.process_merge(&cloud, &ledger, &resolved, 20).unwrap();
        // Reply lost; the edge retries the same delta. Level 1's
        // retained runs have advanced (the merge pushed a new run),
        // but the prior run still resolves the retry...
        let retried = index.resolve_delta_request(&dreq).unwrap();
        assert_eq!(retried, req2);
        // ...and the replay cache answers it without re-merging.
        assert_eq!(index.replay_for(&retried), Some(res2));
        // Runs per level stay bounded at two across further merges.
        let retained = &index.state(edge).unwrap().retained;
        assert!(retained.values().all(|runs| runs.len() <= 2));
    }

    /// Satellite: delta rehydration reuses memoized digests end to
    /// end. Request side: references resolve into the cloud's retained
    /// `Arc`s, whose digests were memoized when the prior merge built
    /// them — resolving hashes nothing, and fingerprinting the
    /// resolved request hashes exactly the wire-shipped full pages.
    /// Reply side: the edge resolves reply references into its own
    /// request `Arc`s, so only the pages shipped in full are ever
    /// hashed again.
    #[test]
    fn delta_paths_never_rehash_retained_pages() {
        use crate::page::hash_stats;
        let (cloud, ledger, mut index, edge, req2, res1) = retained_setup();
        // Request fingerprint baseline before any wire traffic: req2's
        // pages get their memos here, as on a real edge.
        let want_fp = req2.fingerprint();
        let dreq = DeltaMergeRequest::delta_against(&req2, &edge_view(edge, &res1));
        // Wire round-trip: the delta's full pages arrive memo-free,
        // the references as indices — exactly what the cloud decodes.
        let mut enc = wedge_log::Encoder::default();
        dreq.encode_into(&mut enc);
        let bytes = enc.finish();
        let mut dec = wedge_log::Decoder::new(&bytes);
        let dreq = DeltaMergeRequest::decode_from(&mut dec).unwrap();
        dec.finish().unwrap();

        let h0 = hash_stats::computed();
        let resolved = index.resolve_delta_request(&dreq).unwrap();
        assert_eq!(hash_stats::computed() - h0, 0, "request rehydration hashes nothing");

        let h1 = hash_stats::computed();
        assert_eq!(resolved.fingerprint(), want_fp, "delta and full retries share a fingerprint");
        assert_eq!(
            hash_stats::computed() - h1,
            dreq.full_pages(),
            "fingerprinting hashes only wire-shipped pages; retained references keep their memos"
        );

        // Reply side: merge, delta-encode the reply, round-trip it,
        // and resolve it against the request the way the edge does.
        let res2 = index.process_merge(&cloud, &ledger, &resolved, 20).unwrap();
        let dres = DeltaMergeResult::delta_against(&res2, &resolved);
        assert!(dres.reused_pages() > 0, "the reply must actually reference request pages");
        let mut enc = wedge_log::Encoder::default();
        dres.encode_into(&mut enc);
        let bytes = enc.finish();
        let mut dec = wedge_log::Decoder::new(&bytes);
        let dres = DeltaMergeResult::decode_from(&mut dec).unwrap();
        dec.finish().unwrap();

        let h2 = hash_stats::computed();
        let reply = dres.resolve(&resolved).unwrap();
        assert_eq!(hash_stats::computed() - h2, 0, "reply rehydration hashes nothing");
        let h3 = hash_stats::computed();
        for p in &reply.new_target_pages {
            p.digest();
        }
        assert_eq!(
            hash_stats::computed() - h3,
            dres.full_pages(),
            "only the reply's wire-shipped pages are hashed; reused references keep their memos"
        );
        assert_eq!(reply, res2, "the resolved reply is the full result, byte for byte");
    }
}
