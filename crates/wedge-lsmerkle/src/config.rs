//! LSMerkle configuration.

/// Shape of the LSMerkle tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LsmConfig {
    /// Maximum pages per level; index 0 is L0. When level `i` exceeds
    /// `level_thresholds[i]`, all its pages merge into level `i+1`
    /// (§V-B "Merging"). The last level is unbounded in practice; its
    /// threshold only triggers further splits of page ranges.
    pub level_thresholds: Vec<usize>,
    /// Maximum records per sorted page produced by a merge.
    pub page_capacity: usize,
}

impl LsmConfig {
    /// The paper's evaluation configuration: four levels with
    /// thresholds 10, 10, 100, 1000 (§VI).
    pub fn paper_eval() -> Self {
        LsmConfig { level_thresholds: vec![10, 10, 100, 1000], page_capacity: 512 }
    }

    /// The paper's exposition configuration: three levels with
    /// thresholds 2, 2, 4 (§V-B), tiny pages — handy for tests and
    /// examples that want to watch merges happen.
    pub fn exposition() -> Self {
        LsmConfig { level_thresholds: vec![2, 2, 4], page_capacity: 4 }
    }

    /// Number of levels, including L0.
    pub fn num_levels(&self) -> usize {
        self.level_thresholds.len()
    }

    /// Number of Merkle-covered levels (all but L0).
    pub fn num_merkle_levels(&self) -> usize {
        self.level_thresholds.len() - 1
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.level_thresholds.len() < 2 {
            return Err("need at least L0 and one Merkle level".into());
        }
        if self.level_thresholds.contains(&0) {
            return Err("level thresholds must be positive".into());
        }
        if self.page_capacity == 0 {
            return Err("page capacity must be positive".into());
        }
        Ok(())
    }
}

impl Default for LsmConfig {
    fn default() -> Self {
        Self::paper_eval()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_section_vi() {
        let c = LsmConfig::paper_eval();
        assert_eq!(c.level_thresholds, vec![10, 10, 100, 1000]);
        assert_eq!(c.num_levels(), 4);
        assert_eq!(c.num_merkle_levels(), 3);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn exposition_config_matches_section_v() {
        let c = LsmConfig::exposition();
        assert_eq!(c.level_thresholds, vec![2, 2, 4]);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_configs() {
        let too_few = LsmConfig { level_thresholds: vec![2], page_capacity: 4 };
        assert!(too_few.validate().is_err());
        let zero = LsmConfig { level_thresholds: vec![2, 0], page_capacity: 4 };
        assert!(zero.validate().is_err());
        let zero_cap = LsmConfig { level_thresholds: vec![2, 2], page_capacity: 0 };
        assert!(zero_cap.validate().is_err());
    }
}
