//! Property-style tests for LSMerkle: model-based equivalence against
//! a plain ordered map, plus structural invariants under arbitrary
//! workloads.
//!
//! No third-party crates are available in the build environment, so
//! these run each property over deterministic SplitMix64-generated
//! case streams instead of proptest.

use std::collections::BTreeMap;
use std::sync::Arc;
use wedge_crypto::{Identity, IdentityId, KeyRegistry, MerkleTree};
use wedge_log::{Block, BlockId, BlockProof, CertLedger, Entry};
use wedge_lsmerkle::{
    build_read_proof, check_level_ranges, kv_entry, needs_compaction, records_from_block,
    verify_read_proof, CloudIndex, KvOp, KvRecord, L0Page, LsMerkle, LsmConfig, MergeRequest,
    MerkleForest, Page,
};

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    /// Arbitrary op stream: (key in a small space, Some(value) | None).
    fn ops(&mut self) -> Vec<(u64, Option<Vec<u8>>)> {
        let n = 1 + self.below(119);
        (0..n)
            .map(|_| {
                let key = self.below(64);
                let value = if self.below(10) < 8 {
                    let len = 1 + self.below(7) as usize;
                    Some((0..len).map(|_| self.next() as u8).collect())
                } else {
                    None
                };
                (key, value)
            })
            .collect()
    }
}

/// A full edge+cloud fixture that ingests scripted ops.
struct Fixture {
    cloud: Identity,
    client: Identity,
    registry: KeyRegistry,
    ledger: CertLedger,
    index: CloudIndex,
    tree: LsMerkle,
    edge: IdentityId,
    next_bid: u64,
    next_seq: u64,
}

impl Fixture {
    fn new(cfg: LsmConfig) -> Self {
        let cloud = Identity::derive("cloud", 1);
        let client = Identity::derive("client", 1000);
        let edge = IdentityId(100);
        let mut registry = KeyRegistry::new();
        registry.register(cloud.id, cloud.public()).unwrap();
        registry.register(client.id, client.public()).unwrap();
        let mut index = CloudIndex::new(cfg.clone());
        let init = index.init_edge(&cloud, edge, 0);
        let tree = LsMerkle::new(edge, cfg, init);
        Fixture {
            cloud,
            client,
            registry,
            ledger: CertLedger::new(),
            index,
            tree,
            edge,
            next_bid: 0,
            next_seq: 0,
        }
    }

    /// The pre-optimization compaction, kept as a reference model:
    /// materialize every record, full-sort newest-first, dedup per
    /// key, drop tombstones at the deepest level. The streaming k-way
    /// merge must reproduce this byte-for-byte.
    fn reference_merge(&self, req: &MergeRequest) -> Vec<KvRecord> {
        let mut combined: Vec<KvRecord> = Vec::new();
        for p in &req.source_l0 {
            combined.extend(records_from_block(p.block()));
        }
        for p in req.source_pages.iter().chain(req.target_pages.iter()) {
            combined.extend(p.records().iter().cloned());
        }
        combined.sort_by(|a, b| a.key.cmp(&b.key).then(b.version.cmp(&a.version)));
        combined.dedup_by(|a, b| a.key == b.key); // keeps first = newest
        let deepest = (req.source_level + 1) as usize == self.index.config().num_merkle_levels();
        if deepest {
            combined.retain(|r| r.value.is_some());
        }
        combined
    }

    fn ingest_block(&mut self, ops: &[(u64, Option<Vec<u8>>)]) {
        let entries: Vec<Entry> = ops
            .iter()
            .map(|(k, v)| {
                let op = match v {
                    Some(v) => KvOp::put(*k, v.clone()),
                    None => KvOp::delete(*k),
                };
                let e = kv_entry(&self.client, self.next_seq, &op);
                self.next_seq += 1;
                e
            })
            .collect();
        let block = Block {
            edge: self.edge,
            id: BlockId(self.next_bid),
            entries,
            sealed_at_ns: self.next_bid,
        };
        self.next_bid += 1;
        let digest = block.digest();
        self.ledger.offer(self.edge, block.id, digest);
        let proof = BlockProof::issue(&self.cloud, self.edge, block.id, digest);
        self.tree.apply_block(block);
        self.tree.attach_block_proof(proof);
        while let Some(level) = self.tree.overflowing_level() {
            let req = self.tree.build_merge_request(level);
            if level == 0 && req.source_l0.is_empty() {
                break;
            }
            let reference = self.reference_merge(&req);
            let res = self.index.process_merge(&self.cloud, &self.ledger, &req, 0).unwrap();
            // The k-way merge output must equal the old sort-based
            // merge, record for record.
            let merged: Vec<KvRecord> =
                res.new_target_pages.iter().flat_map(|p| p.records().iter().cloned()).collect();
            assert_eq!(merged, reference, "k-way merge diverged from sort-based reference");
            self.tree.apply_merge_result(&req, res).unwrap();
        }
    }

    /// Recomputes every digest/root in the tree from scratch and
    /// asserts the memoized values are byte-identical.
    fn assert_caches_fresh(&self) {
        for (page, _) in self.tree.l0_pages() {
            assert_eq!(page.digest(), page.block().digest(), "stale L0 digest memo");
        }
        let mut fresh_roots = Vec::new();
        for level in self.tree.levels() {
            for page in level.pages() {
                let fresh = Page::new(
                    page.min(),
                    page.max(),
                    page.records().to_vec(),
                    page.created_at_ns(),
                );
                assert_eq!(page.digest(), fresh.digest(), "stale page digest memo");
            }
            let fresh_tree = MerkleTree::from_leaf_iter(level.pages().iter().map(|p| p.digest()));
            assert_eq!(level.root(), fresh_tree.root(), "stale level tree");
            fresh_roots.push(fresh_tree.root());
        }
        assert_eq!(self.tree.level_roots(), fresh_roots);
        assert_eq!(
            self.tree.global().root,
            wedge_crypto::merkle::global_root(&fresh_roots),
            "global cert does not cover the freshly recomputed roots"
        );
    }
}

/// LSMerkle agrees with a plain BTreeMap model under arbitrary
/// put/delete streams and arbitrary batching (merges included).
#[test]
fn model_equivalence() {
    for case in 0..24u64 {
        let mut rng = Rng::new(0x30DE1 ^ case);
        let ops = rng.ops();
        let batch = 1 + rng.below(6) as usize;
        let mut fx = Fixture::new(LsmConfig::exposition());
        let mut model: BTreeMap<u64, Option<Vec<u8>>> = BTreeMap::new();
        for chunk in ops.chunks(batch) {
            fx.ingest_block(chunk);
            for (k, v) in chunk {
                model.insert(*k, v.clone());
            }
        }
        for key in 0u64..64 {
            let expect = model.get(&key).cloned().flatten();
            let got = fx.tree.find_newest(key).and_then(|(r, _)| r.value);
            assert_eq!(expect, got, "case {case} key {key}");
        }
    }
}

/// Every level obeys the paper's range invariants after any sequence
/// of merges.
#[test]
fn level_invariants_hold() {
    for case in 0..24u64 {
        let mut rng = Rng::new(0x1E7E1 ^ case);
        let ops = rng.ops();
        let batch = 1 + rng.below(6) as usize;
        let mut fx = Fixture::new(LsmConfig::exposition());
        for chunk in ops.chunks(batch) {
            fx.ingest_block(chunk);
            for level in fx.tree.levels() {
                assert!(check_level_ranges(level.pages()).is_ok(), "case {case}");
            }
        }
    }
}

/// Read proofs for every key — present or absent — verify, and the
/// verified value matches the model.
#[test]
fn read_proofs_verify_and_match() {
    for case in 0..24u64 {
        let mut rng = Rng::new(0x9200F ^ case);
        let ops = rng.ops();
        let batch = 1 + rng.below(6) as usize;
        let mut fx = Fixture::new(LsmConfig::exposition());
        let mut model: BTreeMap<u64, Option<Vec<u8>>> = BTreeMap::new();
        for chunk in ops.chunks(batch) {
            fx.ingest_block(chunk);
            for (k, v) in chunk {
                model.insert(*k, v.clone());
            }
        }
        for _ in 0..1 + rng.below(11) {
            let key = rng.below(80);
            let proof = build_read_proof(&fx.tree, key);
            let read =
                verify_read_proof(&proof, fx.edge, fx.cloud.id, &fx.registry, u64::MAX, None);
            assert!(read.is_ok(), "case {case} key {key}: {:?}", read.err());
            let expect = model.get(&key).cloned().flatten();
            assert_eq!(read.unwrap().value, expect, "case {case} key {key}");
        }
    }
}

/// The epoch advances exactly once per merge, and the edge's level
/// roots always equal the cloud's authoritative roots.
#[test]
fn edge_cloud_root_agreement() {
    for case in 0..24u64 {
        let mut rng = Rng::new(0xA62EE ^ case);
        let ops = rng.ops();
        let batch = 1 + rng.below(6) as usize;
        let mut fx = Fixture::new(LsmConfig::exposition());
        for chunk in ops.chunks(batch) {
            fx.ingest_block(chunk);
            let cloud_state = fx.index.state(fx.edge).unwrap();
            assert_eq!(fx.tree.epoch(), cloud_state.epoch);
            assert_eq!(fx.tree.level_roots(), cloud_state.level_roots.clone());
        }
    }
}

/// Tampering with any page in a proof is always detected.
#[test]
fn tampered_proofs_rejected() {
    for case in 0..24u64 {
        let mut rng = Rng::new(0x7A27E ^ case);
        let ops = rng.ops();
        let key = rng.below(64);
        let tamper_value: Vec<u8> = (0..1 + rng.below(3)).map(|_| rng.next() as u8).collect();
        let mut fx = Fixture::new(LsmConfig::exposition());
        for chunk in ops.chunks(3) {
            fx.ingest_block(chunk);
        }
        let mut proof = build_read_proof(&fx.tree, key);
        // Tamper wherever there is material.
        // Pages are immutable; a lying edge constructs replacements.
        let mut tampered = false;
        if let Some(w) = proof.witnesses.first_mut() {
            let mut records = w.page.records().to_vec();
            if let Some(r) = records.first_mut() {
                if r.value.as_ref() != Some(&tamper_value) {
                    r.value = Some(tamper_value.clone());
                    w.page = Arc::new(Page::new(
                        w.page.min(),
                        w.page.max(),
                        records,
                        w.page.created_at_ns(),
                    ));
                    tampered = true;
                }
            }
        } else if let Some(w) = proof.l0.first_mut() {
            let mut records = w.page.records().to_vec();
            if let Some(r) = records.first_mut() {
                if r.value.as_ref() != Some(&tamper_value) {
                    r.value = Some(tamper_value.clone());
                    w.page = Arc::new(L0Page::forged(w.page.block().clone(), records));
                    tampered = true;
                }
            }
        }
        if !tampered {
            continue;
        }
        let read = verify_read_proof(&proof, fx.edge, fx.cloud.id, &fx.registry, u64::MAX, None);
        assert!(read.is_err(), "case {case}: tampered proof accepted");
    }
}

/// Tentpole property: a Merkle forest carried through any random
/// schedule of appends, run replacements, point edits, and
/// truncations has the same root as a flat `MerkleTree` rebuilt from
/// scratch over the same leaf run — and its inclusion proofs verify
/// through the flat verifier. This is what makes swapping the level
/// trees for forests invisible at the signed-root level: no wire or
/// signature change.
#[test]
fn forest_root_matches_flat_tree_under_random_schedules() {
    use wedge_crypto::merkle::hash_leaf;
    for case in 0..64u64 {
        let mut rng = Rng::new(0xF0BE57 ^ case);
        let mut leaves: Vec<wedge_crypto::Digest> = Vec::new();
        let mut forest = MerkleForest::empty();
        for step in 0..2 + rng.below(24) {
            match rng.below(4) {
                // Append a short run (a merge growing the level).
                0 => {
                    for _ in 0..=rng.below(5) {
                        leaves.push(hash_leaf(&rng.next().to_le_bytes()));
                    }
                }
                // Replace a contiguous run with one of a different
                // length (an incremental merge re-chunking a region).
                1 if !leaves.is_empty() => {
                    let start = rng.below(leaves.len() as u64) as usize;
                    let end = start + 1 + rng.below((leaves.len() - start) as u64) as usize;
                    let repl: Vec<_> =
                        (0..rng.below(6)).map(|_| hash_leaf(&rng.next().to_le_bytes())).collect();
                    leaves.splice(start..end, repl);
                }
                // Truncate (a drained or folded level shrinking).
                2 if !leaves.is_empty() => {
                    let keep = rng.below(leaves.len() as u64 + 1) as usize;
                    leaves.truncate(keep);
                }
                // Point edit (a single dirty page).
                _ => {
                    if !leaves.is_empty() {
                        let i = rng.below(leaves.len() as u64) as usize;
                        leaves[i] = hash_leaf(&rng.next().to_le_bytes());
                    }
                }
            }
            forest = MerkleForest::rebuild(leaves.clone(), &forest);
            let flat = MerkleTree::from_leaf_iter(leaves.iter().copied());
            assert_eq!(
                forest.root(),
                flat.root(),
                "case {case} step {step}: forest root diverged from flat tree"
            );
            assert_eq!(forest.leaf_count(), leaves.len());
            if !leaves.is_empty() {
                let i = rng.below(leaves.len() as u64) as usize;
                let proof = forest.prove(i).expect("in-range leaf proves");
                assert!(
                    MerkleTree::verify(&flat.root(), &leaves[i], &proof),
                    "case {case} step {step}: forest proof rejected by the flat verifier"
                );
            }
        }
    }
}

/// Fragmentation regression: incremental merges confined to dirty
/// regions leave one partial page per region boundary, so narrow
/// updates decay a level toward tiny pages. A background-compaction
/// request (empty source, same merge path) must fold every shrinkable
/// run back to the configured page capacity — without disturbing a
/// single record.
#[test]
fn background_compaction_folds_partial_pages_back_to_capacity() {
    let cap = LsmConfig::exposition().page_capacity;
    let partials = |fx: &Fixture| -> usize {
        fx.tree.levels().iter().flat_map(|l| l.pages()).filter(|p| p.records().len() < cap).count()
    };
    let mut fx = Fixture::new(LsmConfig::exposition());
    let mut model: BTreeMap<u64, Option<Vec<u8>>> = BTreeMap::new();
    let mut ingest = |fx: &mut Fixture, ops: Vec<(u64, Option<Vec<u8>>)>| {
        fx.ingest_block(&ops);
        for (k, v) in ops {
            model.insert(k, v);
        }
    };
    // Fill a sparse key space wide so deep levels hold full pages...
    let wide: Vec<(u64, Option<Vec<u8>>)> = (0..64).map(|k| (k * 8, Some(vec![k as u8]))).collect();
    for chunk in wide.chunks(4) {
        ingest(&mut fx, chunk.to_vec());
    }
    // ...then hammer narrow key bands with *inserts and deletes*:
    // each merge dirties one or two deep pages, and a region whose
    // record count changed re-splits into full pages plus a partial
    // boundary page. (Pure updates would not fragment — counts are
    // preserved and regions re-split into the same full pages.)
    let mut rng = Rng::new(0xF01D);
    let mut fragmented = false;
    for round in 0..400u64 {
        let base = rng.below(500);
        let ops: Vec<(u64, Option<Vec<u8>>)> = (0..3)
            .map(|i| {
                let key = base + i;
                let value = if rng.below(5) == 0 { None } else { Some(vec![round as u8, i as u8]) };
                (key, value)
            })
            .collect();
        ingest(&mut fx, ops);
        if fx.tree.fragmented_level().is_some() {
            fragmented = true;
            break;
        }
    }
    assert!(fragmented, "narrow insert/delete workload failed to fragment any level");
    let partial_before = partials(&fx);

    // Drive the compactor exactly as the edge engine's clock does:
    // build an empty-source request, have the cloud fold + re-sign,
    // apply the result. Repeat while eligible levels remain.
    let stats_before = fx.index.compaction_stats();
    while let Some(req) = fx.tree.build_compaction_request() {
        assert!(req.source_l0.is_empty() && req.source_pages.is_empty());
        let res = fx.index.process_merge(&fx.cloud, &fx.ledger, &req, 0).unwrap();
        fx.tree.apply_merge_result(&req, res).unwrap();
    }
    let stats = fx.index.compaction_stats();
    assert!(stats.fold_runs > stats_before.fold_runs, "compaction folded nothing");
    assert!(stats.pages_folded_in > stats.pages_folded_out, "folds must shrink the level");

    // Partial boundary pages are folded back to capacity: fewer
    // partial pages overall, and no level the compactor may touch
    // still holds a shrinkable run.
    assert!(partials(&fx) < partial_before, "partial page count did not drop");
    for (i, level) in fx.tree.levels().iter().enumerate() {
        let above_empty = i == 0 || fx.tree.levels()[i - 1].pages().is_empty();
        if above_empty {
            assert!(!needs_compaction(level.pages(), cap), "level {} still foldable", i + 1);
        }
    }
    fx.assert_caches_fresh();

    // Folding moved records between pages but changed none of them.
    for key in 0u64..512 {
        let expect = model.get(&key).cloned().flatten();
        let got = fx.tree.find_newest(key).and_then(|(r, _)| r.value);
        assert_eq!(expect, got, "key {key} corrupted by compaction");
    }
}

/// Differential property: across random ingest/merge/read schedules,
/// every memoized digest, level root, and the global root are
/// byte-identical to freshly recomputed ones, and the streaming k-way
/// merge matches the old sort-based compaction (checked per merge
/// inside `ingest_block`).
#[test]
fn cached_digests_match_fresh_recompute() {
    for case in 0..24u64 {
        let mut rng = Rng::new(0xD1FF ^ case);
        let ops = rng.ops();
        let batch = 1 + rng.below(6) as usize;
        let mut fx = Fixture::new(LsmConfig::exposition());
        for chunk in ops.chunks(batch) {
            fx.ingest_block(chunk);
            // Exercise the read path so proof construction populates
            // any lazily computed digests before the audit.
            let key = rng.below(80);
            let proof = build_read_proof(&fx.tree, key);
            verify_read_proof(&proof, fx.edge, fx.cloud.id, &fx.registry, u64::MAX, None)
                .expect("honest proof verifies");
            fx.assert_caches_fresh();
        }
    }
}
