//! The edge node's entry buffer.
//!
//! Incoming entries accumulate here; when the buffer reaches the batch
//! size (the paper's "block is ready", §IV-B) a block is sealed. Replay
//! protection lives here too: a duplicate `(client, sequence)` pair is
//! rejected (§IV-E idempotence).

use crate::block::{Block, BlockId};
use crate::entry::Entry;
use std::collections::HashMap;
use wedge_crypto::IdentityId;

/// Outcome of offering an entry to the buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum PushOutcome {
    /// Entry buffered; block not yet full.
    Buffered,
    /// Entry buffered and the block became full — call
    /// [`BlockBuffer::seal`].
    Full,
    /// Duplicate `(client, sequence)`; entry rejected (replay).
    DuplicateRejected,
}

/// Accumulates entries until a block can be sealed.
#[derive(Debug)]
pub struct BlockBuffer {
    batch_size: usize,
    pending: Vec<Entry>,
    /// Highest sequence seen per client (replay window). The paper
    /// permits idempotent application; we reject outright duplicates.
    last_seq: HashMap<IdentityId, u64>,
    next_id: BlockId,
    edge: IdentityId,
}

impl BlockBuffer {
    /// Creates a buffer for `edge` sealing blocks of `batch_size`
    /// entries.
    pub fn new(edge: IdentityId, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        BlockBuffer {
            batch_size,
            // Cap the eager allocation; huge batch sizes grow lazily.
            pending: Vec::with_capacity(batch_size.min(4096)),
            last_seq: HashMap::new(),
            next_id: BlockId(0),
            edge,
        }
    }

    /// Number of entries waiting for the next seal.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The id the next sealed block will get.
    pub fn next_block_id(&self) -> BlockId {
        self.next_id
    }

    /// The configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Offers an entry. Rejects replays of `(client, sequence)` pairs
    /// at or below the client's high-water mark.
    pub fn push(&mut self, entry: Entry) -> PushOutcome {
        if let Some(&hi) = self.last_seq.get(&entry.client) {
            if entry.sequence <= hi {
                return PushOutcome::DuplicateRejected;
            }
        }
        self.last_seq.insert(entry.client, entry.sequence);
        self.pending.push(entry);
        if self.pending.len() >= self.batch_size {
            PushOutcome::Full
        } else {
            PushOutcome::Buffered
        }
    }

    /// Advances the next block id to `next` if it is ahead — used when
    /// blocks were appended to the log out-of-band (e.g. the harness
    /// preload path) so sealing resumes after them.
    pub fn align_next_id(&mut self, next: BlockId) {
        if next > self.next_id {
            self.next_id = next;
        }
    }

    /// Seals the pending entries into a block (even if not full — used
    /// for timeouts and no-op freshness blocks). Returns `None` when
    /// empty.
    pub fn seal(&mut self, now_ns: u64) -> Option<Block> {
        if self.pending.is_empty() {
            return None;
        }
        let entries = std::mem::take(&mut self.pending);
        self.pending.reserve(self.batch_size.min(4096));
        let block = Block { edge: self.edge, id: self.next_id, entries, sealed_at_ns: now_ns };
        self.next_id = self.next_id.next();
        Some(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wedge_crypto::Identity;

    fn entry(client: &Identity, seq: u64) -> Entry {
        Entry::new_signed(client, seq, vec![0; 8])
    }

    #[test]
    fn fills_and_seals() {
        let c = Identity::derive("client", 1);
        let mut buf = BlockBuffer::new(IdentityId(9), 3);
        assert_eq!(buf.push(entry(&c, 0)), PushOutcome::Buffered);
        assert_eq!(buf.push(entry(&c, 1)), PushOutcome::Buffered);
        assert_eq!(buf.push(entry(&c, 2)), PushOutcome::Full);
        let b = buf.seal(100).unwrap();
        assert_eq!(b.id, BlockId(0));
        assert_eq!(b.len(), 3);
        assert_eq!(b.sealed_at_ns, 100);
        assert_eq!(buf.pending_len(), 0);
        assert_eq!(buf.next_block_id(), BlockId(1));
    }

    #[test]
    fn replay_rejected() {
        let c = Identity::derive("client", 1);
        let mut buf = BlockBuffer::new(IdentityId(9), 10);
        assert_eq!(buf.push(entry(&c, 5)), PushOutcome::Buffered);
        assert_eq!(buf.push(entry(&c, 5)), PushOutcome::DuplicateRejected);
        assert_eq!(buf.push(entry(&c, 3)), PushOutcome::DuplicateRejected);
        assert_eq!(buf.push(entry(&c, 6)), PushOutcome::Buffered);
        assert_eq!(buf.pending_len(), 2);
    }

    #[test]
    fn replay_window_survives_seal() {
        let c = Identity::derive("client", 1);
        let mut buf = BlockBuffer::new(IdentityId(9), 1);
        assert_eq!(buf.push(entry(&c, 0)), PushOutcome::Full);
        buf.seal(0).unwrap();
        assert_eq!(buf.push(entry(&c, 0)), PushOutcome::DuplicateRejected);
    }

    #[test]
    fn different_clients_do_not_collide() {
        let c1 = Identity::derive("client", 1);
        let c2 = Identity::derive("client", 2);
        let mut buf = BlockBuffer::new(IdentityId(9), 10);
        assert_eq!(buf.push(entry(&c1, 0)), PushOutcome::Buffered);
        assert_eq!(buf.push(entry(&c2, 0)), PushOutcome::Buffered);
    }

    #[test]
    fn empty_seal_is_none() {
        let mut buf = BlockBuffer::new(IdentityId(9), 2);
        assert!(buf.seal(0).is_none());
    }

    #[test]
    fn partial_seal_on_timeout() {
        let c = Identity::derive("client", 1);
        let mut buf = BlockBuffer::new(IdentityId(9), 100);
        buf.push(entry(&c, 0));
        let b = buf.seal(7).unwrap();
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn block_ids_are_monotonic() {
        let c = Identity::derive("client", 1);
        let mut buf = BlockBuffer::new(IdentityId(9), 1);
        for i in 0..5 {
            buf.push(entry(&c, i));
            let b = buf.seal(0).unwrap();
            assert_eq!(b.id, BlockId(i));
        }
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_panics() {
        let _ = BlockBuffer::new(IdentityId(9), 0);
    }
}
