//! Log-position reservations: the §IV-E extension for making
//! *arbitrary* requests idempotent.
//!
//! The base protocol relies on naturally idempotent requests (sensor
//! readings keyed by timestamp) or the `(client, sequence)` replay
//! window. For requests that are not naturally idempotent, the paper
//! sketches a stronger scheme: the client first *reserves* a log
//! position with the edge, then signs the request **for that specific
//! position** — any replay at a different position is detectably
//! invalid, with no extra edge-cloud communication.
//!
//! Reservations come in two flavours (§IV-E): **mandatory** (the block
//! waits for all reserved requests) and **best-effort** (late
//! reservations are discarded and the client must re-reserve).

use crate::block::{Block, BlockId};
use crate::enc::Encoder;
use crate::entry::Entry;
use std::collections::HashMap;
use wedge_crypto::{Identity, IdentityId, KeyRegistry, Signature};

/// A position in the edge node's log: block id plus offset.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct LogPosition {
    /// The block the position falls in.
    pub bid: BlockId,
    /// Offset within the block.
    pub offset: u32,
}

/// An edge-signed reservation: "position `pos` is held for `client`
/// until the block seals".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reservation {
    /// The reserving client.
    pub client: IdentityId,
    /// The granted position.
    pub pos: LogPosition,
    /// Edge signature (the client's proof it was granted the slot).
    pub signature: Signature,
}

impl Reservation {
    fn signing_bytes(client: IdentityId, pos: LogPosition) -> Vec<u8> {
        let mut enc = Encoder::with_tag_and_capacity("wedge-reservation-v1", 8 + 8 + 4);
        enc.put_u64(client.0).put_u64(pos.bid.0).put_u32(pos.offset);
        enc.finish()
    }

    /// Verifies the edge's signature on the grant.
    pub fn verify(&self, edge: IdentityId, registry: &KeyRegistry) -> bool {
        registry.verify(edge, &Self::signing_bytes(self.client, self.pos), &self.signature)
    }
}

/// A client request bound to a reserved position: the client signs
/// `(position, payload)`, so the same payload at any other position
/// carries an invalid signature — replays are structurally impossible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PositionedRequest {
    /// The signing client.
    pub client: IdentityId,
    /// The position the payload is signed for.
    pub pos: LogPosition,
    /// The payload.
    pub payload: Vec<u8>,
    /// Client signature over `(pos, payload)`.
    pub signature: Signature,
}

impl PositionedRequest {
    fn signing_bytes(client: IdentityId, pos: LogPosition, payload: &[u8]) -> Vec<u8> {
        let mut enc =
            Encoder::with_tag_and_capacity("wedge-positioned-v1", 8 + 8 + 4 + 8 + payload.len());
        enc.put_u64(client.0).put_u64(pos.bid.0).put_u32(pos.offset).put_bytes(payload);
        enc.finish()
    }

    /// Builds and signs a request for a reserved position.
    pub fn sign(identity: &Identity, pos: LogPosition, payload: Vec<u8>) -> Self {
        let signature = identity.sign(&Self::signing_bytes(identity.id, pos, &payload));
        PositionedRequest { client: identity.id, pos, payload, signature }
    }

    /// Verifies the position-bound signature.
    pub fn verify(&self, registry: &KeyRegistry) -> bool {
        registry.verify(
            self.client,
            &Self::signing_bytes(self.client, self.pos, &self.payload),
            &self.signature,
        )
    }
}

/// Reservation policy (§IV-E).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReservePolicy {
    /// The block waits for every reserved slot to be filled.
    Mandatory,
    /// Sealing discards unfilled reservations; late clients must
    /// re-reserve.
    BestEffort,
}

/// Outcome of attempting to seal a reserving block.
#[derive(Debug, PartialEq, Eq)]
pub enum SealOutcome {
    /// Sealed; unfilled best-effort reservations were discarded (their
    /// clients are listed for re-reservation notices).
    Sealed(Vec<IdentityId>),
    /// Mandatory policy and reservations are still outstanding.
    WaitingFor(Vec<LogPosition>),
}

/// Errors from the reserving buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum ReserveError {
    /// The position was never reserved or was reserved by another
    /// client.
    NotReserved(LogPosition),
    /// The position is in an already-sealed block.
    BlockSealed(BlockId),
    /// The request's signature does not cover this position.
    BadSignature,
    /// The slot was already filled.
    AlreadyFilled(LogPosition),
}

/// A block buffer where every slot is reserved before it is filled.
pub struct ReservingBuffer {
    edge: Identity,
    batch_size: u32,
    policy: ReservePolicy,
    current: BlockId,
    next_offset: u32,
    /// Reserved-but-unfilled slots of the current block.
    reserved: HashMap<LogPosition, IdentityId>,
    /// Filled slots (offset → entry payload source).
    filled: HashMap<u32, PositionedRequest>,
}

impl ReservingBuffer {
    /// Creates a reserving buffer sealing blocks of `batch_size` slots.
    pub fn new(edge: Identity, batch_size: u32, policy: ReservePolicy) -> Self {
        assert!(batch_size > 0);
        ReservingBuffer {
            edge,
            batch_size,
            policy,
            current: BlockId(0),
            next_offset: 0,
            reserved: HashMap::new(),
            filled: HashMap::new(),
        }
    }

    /// The block currently being filled.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Reserves the next free slot for `client`. Returns the signed
    /// grant, or `None` if the current block has no free slots left
    /// (callers seal and retry).
    pub fn reserve(&mut self, client: IdentityId) -> Option<Reservation> {
        if self.next_offset >= self.batch_size {
            return None;
        }
        let pos = LogPosition { bid: self.current, offset: self.next_offset };
        self.next_offset += 1;
        self.reserved.insert(pos, client);
        let signature = self.edge.sign(&Reservation::signing_bytes(client, pos));
        Some(Reservation { client, pos, signature })
    }

    /// Submits a position-bound request for its reserved slot.
    pub fn submit(
        &mut self,
        req: PositionedRequest,
        registry: &KeyRegistry,
    ) -> Result<(), ReserveError> {
        if req.pos.bid != self.current {
            return Err(ReserveError::BlockSealed(req.pos.bid));
        }
        match self.reserved.get(&req.pos) {
            Some(holder) if *holder == req.client => {}
            _ => return Err(ReserveError::NotReserved(req.pos)),
        }
        if self.filled.contains_key(&req.pos.offset) {
            return Err(ReserveError::AlreadyFilled(req.pos));
        }
        if !req.verify(registry) {
            return Err(ReserveError::BadSignature);
        }
        self.reserved.remove(&req.pos);
        self.filled.insert(req.pos.offset, req);
        Ok(())
    }

    /// True iff every issued slot of the current block is filled.
    pub fn is_complete(&self) -> bool {
        self.reserved.is_empty() && self.next_offset > 0
    }

    /// Attempts to seal the current block.
    ///
    /// Entries appear in offset order; unfilled best-effort slots are
    /// skipped (their holders returned for notification). Mandatory
    /// policy refuses to seal while reservations are outstanding.
    pub fn seal(&mut self, now_ns: u64) -> Result<(Block, SealOutcome), SealOutcome> {
        if self.next_offset == 0 {
            return Err(SealOutcome::Sealed(Vec::new())); // nothing to seal
        }
        if self.policy == ReservePolicy::Mandatory && !self.reserved.is_empty() {
            let mut waiting: Vec<LogPosition> = self.reserved.keys().copied().collect();
            waiting.sort();
            return Err(SealOutcome::WaitingFor(waiting));
        }
        let discarded: Vec<IdentityId> = self.reserved.drain().map(|(_, c)| c).collect();
        let mut offsets: Vec<u32> = self.filled.keys().copied().collect();
        offsets.sort_unstable();
        let entries: Vec<Entry> = offsets
            .iter()
            .map(|off| {
                let req = &self.filled[off];
                // The positioned signature replaces the plain entry
                // signature; the entry records which position it was
                // signed for via the sequence field (offset).
                Entry {
                    client: req.client,
                    sequence: (req.pos.bid.0 << 20) | req.pos.offset as u64,
                    payload: req.payload.clone(),
                    signature: req.signature,
                }
            })
            .collect();
        let block = Block { edge: self.edge.id, id: self.current, entries, sealed_at_ns: now_ns };
        self.filled.clear();
        self.current = self.current.next();
        self.next_offset = 0;
        Ok((block, SealOutcome::Sealed(discarded)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ReservingBuffer, Identity, Identity, KeyRegistry) {
        let edge = Identity::derive("edge", 100);
        let client = Identity::derive("client", 1);
        let mut reg = KeyRegistry::new();
        reg.register(edge.id, edge.public()).unwrap();
        reg.register(client.id, client.public()).unwrap();
        let buf = ReservingBuffer::new(edge.clone(), 3, ReservePolicy::BestEffort);
        (buf, edge, client, reg)
    }

    #[test]
    fn reserve_submit_seal_roundtrip() {
        let (mut buf, edge, client, reg) = setup();
        let r1 = buf.reserve(client.id).unwrap();
        assert!(r1.verify(edge.id, &reg));
        let req = PositionedRequest::sign(&client, r1.pos, b"op-1".to_vec());
        assert!(req.verify(&reg));
        buf.submit(req, &reg).unwrap();
        let (block, outcome) = buf.seal(0).unwrap();
        assert_eq!(block.len(), 1);
        assert_eq!(outcome, SealOutcome::Sealed(vec![]));
        assert_eq!(buf.current_block(), BlockId(1));
    }

    #[test]
    fn replay_at_other_position_fails_signature() {
        let (mut buf, _edge, client, reg) = setup();
        let r1 = buf.reserve(client.id).unwrap();
        let r2 = buf.reserve(client.id).unwrap();
        let req = PositionedRequest::sign(&client, r1.pos, b"pay-once".to_vec());
        // Replay the same signed payload at the second slot.
        let replay = PositionedRequest { pos: r2.pos, ..req.clone() };
        buf.submit(req, &reg).unwrap();
        assert_eq!(buf.submit(replay, &reg), Err(ReserveError::BadSignature));
    }

    #[test]
    fn unreserved_and_foreign_slots_rejected() {
        let (mut buf, _edge, client, reg) = setup();
        let other = Identity::derive("client", 2);
        let mut reg2 = reg.clone();
        reg2.register(other.id, other.public()).unwrap();
        let r = buf.reserve(client.id).unwrap();
        // Another client tries to fill the reserved slot.
        let foreign = PositionedRequest::sign(&other, r.pos, b"steal".to_vec());
        assert_eq!(buf.submit(foreign, &reg2), Err(ReserveError::NotReserved(r.pos)));
        // A made-up position.
        let fake_pos = LogPosition { bid: buf.current_block(), offset: 99 };
        let fake = PositionedRequest::sign(&client, fake_pos, b"x".to_vec());
        assert_eq!(buf.submit(fake, &reg), Err(ReserveError::NotReserved(fake_pos)));
    }

    #[test]
    fn double_fill_rejected() {
        let (mut buf, _edge, client, reg) = setup();
        let r = buf.reserve(client.id).unwrap();
        buf.submit(PositionedRequest::sign(&client, r.pos, b"a".to_vec()), &reg).unwrap();
        let again = PositionedRequest::sign(&client, r.pos, b"b".to_vec());
        assert_eq!(buf.submit(again, &reg), Err(ReserveError::NotReserved(r.pos)));
    }

    #[test]
    fn best_effort_discards_late_reservations() {
        let (mut buf, _edge, client, reg) = setup();
        let r1 = buf.reserve(client.id).unwrap();
        let _r2 = buf.reserve(client.id).unwrap(); // never filled
        buf.submit(PositionedRequest::sign(&client, r1.pos, b"a".to_vec()), &reg).unwrap();
        let (block, outcome) = buf.seal(0).unwrap();
        assert_eq!(block.len(), 1);
        assert_eq!(outcome, SealOutcome::Sealed(vec![client.id]));
    }

    #[test]
    fn mandatory_waits_for_all_slots() {
        let edge = Identity::derive("edge", 100);
        let client = Identity::derive("client", 1);
        let mut reg = KeyRegistry::new();
        reg.register(edge.id, edge.public()).unwrap();
        reg.register(client.id, client.public()).unwrap();
        let mut buf = ReservingBuffer::new(edge, 2, ReservePolicy::Mandatory);
        let r1 = buf.reserve(client.id).unwrap();
        let r2 = buf.reserve(client.id).unwrap();
        buf.submit(PositionedRequest::sign(&client, r1.pos, b"a".to_vec()), &reg).unwrap();
        // Sealing must wait for r2.
        match buf.seal(0) {
            Err(SealOutcome::WaitingFor(waiting)) => assert_eq!(waiting, vec![r2.pos]),
            other => panic!("expected WaitingFor, got {other:?}"),
        }
        buf.submit(PositionedRequest::sign(&client, r2.pos, b"b".to_vec()), &reg).unwrap();
        let (block, _) = buf.seal(0).unwrap();
        assert_eq!(block.len(), 2);
    }

    #[test]
    fn stale_block_submission_rejected() {
        let (mut buf, _edge, client, reg) = setup();
        let r = buf.reserve(client.id).unwrap();
        buf.submit(PositionedRequest::sign(&client, r.pos, b"a".to_vec()), &reg).unwrap();
        buf.seal(0).unwrap();
        // A late submission for the sealed block.
        let late = PositionedRequest::sign(&client, r.pos, b"late".to_vec());
        assert_eq!(buf.submit(late, &reg), Err(ReserveError::BlockSealed(BlockId(0))));
    }

    #[test]
    fn exhausted_block_stops_reserving() {
        let (mut buf, _edge, client, _reg) = setup();
        for _ in 0..3 {
            assert!(buf.reserve(client.id).is_some());
        }
        assert!(buf.reserve(client.id).is_none());
    }
}
