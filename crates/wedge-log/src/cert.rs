//! Certification: block proofs, commit phases, and the cloud's ledger.
//!
//! The heart of *lazy certification* (§IV-B). A block is **Phase I
//! committed** once the edge returns a signed response; it is
//! **Phase II committed** once the cloud signs a [`BlockProof`] over
//! `(edge, bid, digest)`. The cloud's [`CertLedger`] accepts exactly
//! one digest per `(edge, bid)` — a second, different digest is
//! equivocation and flags the edge as malicious.

use crate::block::BlockId;
use crate::enc::Encoder;
use std::collections::HashMap;
use wedge_crypto::{Digest, Identity, IdentityId, KeyRegistry, Signature};

/// The two commit phases of lazy certification (Definitions 1 and 2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommitPhase {
    /// Edge acknowledged; dispute evidence held; cloud not yet heard.
    Phase1,
    /// Cloud certified the digest; equivocation now impossible.
    Phase2,
}

/// A cloud-signed certification that block `bid` at `edge` has digest
/// `digest` — the paper's *block-proof* message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockProof {
    /// The edge node whose log contains the block.
    pub edge: IdentityId,
    /// The certified block id.
    pub bid: BlockId,
    /// The certified digest.
    pub digest: Digest,
    /// Cloud signature over the canonical encoding.
    pub signature: Signature,
}

impl BlockProof {
    /// Canonical bytes covered by the cloud signature.
    pub fn signing_bytes(edge: IdentityId, bid: BlockId, digest: &Digest) -> Vec<u8> {
        let mut enc = Encoder::with_tag_and_capacity("wedge-block-proof-v1", 48);
        enc.put_u64(edge.0).put_u64(bid.0).put_digest(digest);
        enc.finish()
    }

    /// Issues a proof signed by the cloud identity.
    pub fn issue(cloud: &Identity, edge: IdentityId, bid: BlockId, digest: Digest) -> Self {
        let signature = cloud.sign(&Self::signing_bytes(edge, bid, &digest));
        BlockProof { edge, bid, digest, signature }
    }

    /// Verifies the proof against the cloud's registered key.
    pub fn verify(&self, cloud_id: IdentityId, registry: &KeyRegistry) -> bool {
        registry.verify(
            cloud_id,
            &Self::signing_bytes(self.edge, self.bid, &self.digest),
            &self.signature,
        )
    }

    /// Canonical wire encoding (the signed fields plus the
    /// signature), appended to an in-progress message encoding.
    pub fn encode_into(&self, enc: &mut crate::enc::Encoder) {
        enc.put_u64(self.edge.0)
            .put_u64(self.bid.0)
            .put_digest(&self.digest)
            .put_signature(&self.signature);
    }

    /// Inverse of [`BlockProof::encode_into`]. The signature is *not*
    /// verified here — decoding and trusting are separate steps.
    pub fn decode_from(dec: &mut crate::enc::Decoder<'_>) -> Result<Self, crate::enc::DecodeError> {
        Ok(BlockProof {
            edge: IdentityId(dec.get_u64()?),
            bid: BlockId(dec.get_u64()?),
            digest: dec.get_digest()?,
            signature: dec.get_signature()?,
        })
    }

    /// Wire size of a proof message: ids + digest + signature.
    pub const WIRE_SIZE: u64 = 8 + 8 + 32 + 32;

    /// Exact byte length of [`BlockProof::encode_into`]'s output.
    pub const ENCODED_LEN: usize = Self::WIRE_SIZE as usize;
}

/// Result of offering a digest to the cloud ledger.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CertOutcome {
    /// First digest for this `(edge, bid)`: certified.
    Certified,
    /// Same digest re-submitted: idempotent, already certified.
    AlreadyCertified,
    /// A *different* digest was previously certified — the edge is
    /// equivocating. Carries the originally certified digest.
    Equivocation(Digest),
}

/// The cloud node's record of every certified digest.
///
/// This is the state that makes detection inevitable: the cloud
/// "maintains the digests of all committed blocks of edge nodes"
/// (§IV-B) and rejects a second certify request for the same block id.
#[derive(Default, Debug)]
pub struct CertLedger {
    certified: HashMap<(IdentityId, BlockId), Digest>,
    /// Per-edge contiguous log-length watermark (for gossip).
    log_len: HashMap<IdentityId, u64>,
}

impl CertLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offers `(edge, bid, digest)` for certification.
    pub fn offer(&mut self, edge: IdentityId, bid: BlockId, digest: Digest) -> CertOutcome {
        match self.certified.get(&(edge, bid)) {
            Some(existing) if *existing == digest => CertOutcome::AlreadyCertified,
            Some(existing) => CertOutcome::Equivocation(*existing),
            None => {
                self.certified.insert((edge, bid), digest);
                let len = self.log_len.entry(edge).or_insert(0);
                // Watermark = count of contiguously certified blocks
                // from 0; advance while the next id is present.
                while self.certified.contains_key(&(edge, BlockId(*len))) {
                    *len += 1;
                }
                CertOutcome::Certified
            }
        }
    }

    /// The digest certified for `(edge, bid)`, if any.
    pub fn lookup(&self, edge: IdentityId, bid: BlockId) -> Option<&Digest> {
        self.certified.get(&(edge, bid))
    }

    /// Number of contiguously certified blocks for `edge` starting at
    /// block 0 — the log length gossiped to clients for omission
    /// detection (§IV-E).
    pub fn contiguous_len(&self, edge: IdentityId) -> u64 {
        self.log_len.get(&edge).copied().unwrap_or(0)
    }

    /// Total number of certified blocks across all edges.
    pub fn len(&self) -> usize {
        self.certified.len()
    }

    /// True iff nothing has been certified.
    pub fn is_empty(&self) -> bool {
        self.certified.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wedge_crypto::sha256;

    #[test]
    fn first_offer_certifies() {
        let mut ledger = CertLedger::new();
        let d = sha256(b"block0");
        assert_eq!(ledger.offer(IdentityId(1), BlockId(0), d), CertOutcome::Certified);
        assert_eq!(ledger.lookup(IdentityId(1), BlockId(0)), Some(&d));
    }

    #[test]
    fn same_digest_is_idempotent() {
        let mut ledger = CertLedger::new();
        let d = sha256(b"block0");
        ledger.offer(IdentityId(1), BlockId(0), d);
        assert_eq!(ledger.offer(IdentityId(1), BlockId(0), d), CertOutcome::AlreadyCertified);
    }

    #[test]
    fn different_digest_is_equivocation() {
        let mut ledger = CertLedger::new();
        let d1 = sha256(b"honest");
        let d2 = sha256(b"lying");
        ledger.offer(IdentityId(1), BlockId(0), d1);
        assert_eq!(ledger.offer(IdentityId(1), BlockId(0), d2), CertOutcome::Equivocation(d1));
    }

    #[test]
    fn edges_are_independent() {
        let mut ledger = CertLedger::new();
        let d1 = sha256(b"a");
        let d2 = sha256(b"b");
        assert_eq!(ledger.offer(IdentityId(1), BlockId(0), d1), CertOutcome::Certified);
        assert_eq!(ledger.offer(IdentityId(2), BlockId(0), d2), CertOutcome::Certified);
    }

    #[test]
    fn contiguous_watermark_advances_in_order() {
        let mut ledger = CertLedger::new();
        let e = IdentityId(1);
        ledger.offer(e, BlockId(0), sha256(b"0"));
        assert_eq!(ledger.contiguous_len(e), 1);
        // Gap: certify bid 2 before bid 1.
        ledger.offer(e, BlockId(2), sha256(b"2"));
        assert_eq!(ledger.contiguous_len(e), 1);
        ledger.offer(e, BlockId(1), sha256(b"1"));
        assert_eq!(ledger.contiguous_len(e), 3);
    }

    #[test]
    fn block_proof_roundtrip() {
        let cloud = Identity::derive("cloud", 0);
        let mut reg = KeyRegistry::new();
        reg.register(cloud.id, cloud.public()).unwrap();
        let d = sha256(b"block");
        let proof = BlockProof::issue(&cloud, IdentityId(5), BlockId(3), d);
        assert!(proof.verify(cloud.id, &reg));
    }

    #[test]
    fn forged_proof_rejected() {
        let cloud = Identity::derive("cloud", 0);
        let evil = Identity::derive("edge", 66);
        let mut reg = KeyRegistry::new();
        reg.register(cloud.id, cloud.public()).unwrap();
        let d = sha256(b"block");
        // Edge signs its own "proof" pretending to be the cloud.
        let forged = BlockProof {
            edge: IdentityId(5),
            bid: BlockId(3),
            digest: d,
            signature: evil.sign(&BlockProof::signing_bytes(IdentityId(5), BlockId(3), &d)),
        };
        assert!(!forged.verify(cloud.id, &reg));
    }

    #[test]
    fn proof_binds_all_fields() {
        let cloud = Identity::derive("cloud", 0);
        let mut reg = KeyRegistry::new();
        reg.register(cloud.id, cloud.public()).unwrap();
        let d = sha256(b"block");
        let proof = BlockProof::issue(&cloud, IdentityId(5), BlockId(3), d);
        let mut p = proof.clone();
        p.bid = BlockId(4);
        assert!(!p.verify(cloud.id, &reg));
        let mut p = proof.clone();
        p.edge = IdentityId(6);
        assert!(!p.verify(cloud.id, &reg));
        let mut p = proof;
        p.digest = sha256(b"other");
        assert!(!p.verify(cloud.id, &reg));
    }
}
