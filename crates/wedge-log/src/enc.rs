//! Canonical wire encoding.
//!
//! Every signed WedgeChain message is serialized with this tiny,
//! unambiguous, length-prefixed encoding before hashing/signing, so a
//! digest or signature commits to exactly one byte string. (Generic
//! serializers are not canonical by default; hand-rolling ~100 lines is
//! the safer choice for signing.)

/// Incrementally builds a canonical byte string.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an encoder seeded with a domain-separation tag.
    pub fn with_tag(tag: &str) -> Self {
        let mut e = Encoder { buf: Vec::with_capacity(64 + tag.len()) };
        e.put_bytes(tag.as_bytes());
        e
    }

    /// Appends a fixed-width big-endian u8.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a fixed-width big-endian u32.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a fixed-width big-endian u64.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a fixed-width big-endian u128.
    pub fn put_u128(&mut self, v: u128) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends a 32-byte digest (fixed width, no prefix).
    pub fn put_digest(&mut self, d: &wedge_crypto::Digest) -> &mut Self {
        self.buf.extend_from_slice(d.as_bytes());
        self
    }

    /// Finishes and returns the canonical bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Current length (for capacity decisions/tests).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wedge_crypto::sha256;

    #[test]
    fn tag_prefixes_output() {
        let e = Encoder::with_tag("t");
        // 8-byte length + 1 tag byte.
        assert_eq!(e.len(), 9);
    }

    #[test]
    fn length_prefix_prevents_ambiguity() {
        // ("ab", "c") must encode differently from ("a", "bc").
        let mut e1 = Encoder::with_tag("x");
        e1.put_bytes(b"ab").put_bytes(b"c");
        let mut e2 = Encoder::with_tag("x");
        e2.put_bytes(b"a").put_bytes(b"bc");
        assert_ne!(e1.finish(), e2.finish());
    }

    #[test]
    fn fixed_width_ints_are_big_endian() {
        let mut e = Encoder::default();
        e.put_u32(1);
        assert_eq!(e.finish(), vec![0, 0, 0, 1]);
    }

    #[test]
    fn digest_roundtrip_into_encoding() {
        let d = sha256(b"abc");
        let mut e = Encoder::default();
        e.put_digest(&d);
        assert_eq!(e.finish(), d.as_bytes().to_vec());
    }
}
