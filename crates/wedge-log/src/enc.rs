//! Canonical wire encoding and decoding.
//!
//! Every signed WedgeChain message is serialized with this tiny,
//! unambiguous, length-prefixed encoding before hashing/signing, so a
//! digest or signature commits to exactly one byte string. (Generic
//! serializers are not canonical by default; hand-rolling ~100 lines is
//! the safer choice for signing.)
//!
//! [`Decoder`] is the exact inverse, for the networked driver: a
//! stream of fields read in the same order they were written, with
//! every malformation (truncation, bad tag, oversized length prefix,
//! trailing bytes) a typed [`DecodeError`] rather than a panic —
//! decoded bytes come from untrusted peers.

use std::fmt;

/// Incrementally builds a canonical byte string.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an encoder seeded with a domain-separation tag.
    pub fn with_tag(tag: &str) -> Self {
        Self::with_tag_and_capacity(tag, 64)
    }

    /// Creates a tag-seeded encoder pre-sized for `payload_len` more
    /// bytes after the tag — an exact `encoded_len()` here means the
    /// encode never reallocates.
    pub fn with_tag_and_capacity(tag: &str, payload_len: usize) -> Self {
        let mut e = Encoder { buf: Vec::with_capacity(8 + tag.len() + payload_len) };
        e.put_bytes(tag.as_bytes());
        e
    }

    /// Wraps a caller-owned buffer and appends to its existing
    /// contents; [`Encoder::finish`] hands the buffer back. This is
    /// the reuse path: pooled buffers keep their capacity across
    /// messages, and frame builders can lay payload bytes directly
    /// after a header they already wrote.
    pub fn append_to(buf: Vec<u8>) -> Self {
        Encoder { buf }
    }

    /// Reserves room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) -> &mut Self {
        self.buf.reserve(additional);
        self
    }

    /// Appends a fixed-width big-endian u8.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a fixed-width big-endian u32.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a fixed-width big-endian u64.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a fixed-width big-endian u128.
    pub fn put_u128(&mut self, v: u128) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends a 32-byte digest (fixed width, no prefix).
    pub fn put_digest(&mut self, d: &wedge_crypto::Digest) -> &mut Self {
        self.buf.extend_from_slice(d.as_bytes());
        self
    }

    /// Appends a 32-byte Schnorr signature (fixed width, no prefix).
    pub fn put_signature(&mut self, s: &wedge_crypto::Signature) -> &mut Self {
        self.buf.extend_from_slice(&s.to_bytes());
        self
    }

    /// Appends a presence-tagged optional field: `0` for `None`,
    /// `1` followed by the encoded value for `Some`.
    pub fn put_option<T>(
        &mut self,
        v: Option<&T>,
        mut encode: impl FnMut(&mut Self, &T),
    ) -> &mut Self {
        match v {
            Some(v) => {
                self.put_u8(1);
                encode(self, v);
            }
            None => {
                self.put_u8(0);
            }
        }
        self
    }

    /// Finishes and returns the canonical bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Current length (for capacity decisions/tests).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Why decoding failed. Every variant is a malformed (or truncated,
/// or tampered) input — never a programming error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended in the middle of a field.
    UnexpectedEof,
    /// The domain-separation tag did not match the expected one.
    BadTag,
    /// A length prefix claims more bytes than the input holds.
    BadLength,
    /// Input continued past the final field.
    TrailingBytes,
    /// A field held a value the type cannot represent.
    Malformed(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "input truncated mid-field"),
            DecodeError::BadTag => write!(f, "domain-separation tag mismatch"),
            DecodeError::BadLength => write!(f, "length prefix exceeds input"),
            DecodeError::TrailingBytes => write!(f, "trailing bytes after final field"),
            DecodeError::Malformed(what) => write!(f, "malformed field: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Reads fields back out of a canonical byte string, in the order
/// [`Encoder`] wrote them.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Starts decoding `buf` from the beginning.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Consumes and checks the [`Encoder::with_tag`] prefix.
    pub fn expect_tag(&mut self, tag: &str) -> Result<(), DecodeError> {
        if self.get_bytes()? != tag.as_bytes() {
            return Err(DecodeError::BadTag);
        }
        Ok(())
    }

    /// Reads a fixed-width u8.
    pub fn get_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a fixed-width big-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("took 4 bytes")))
    }

    /// Reads a fixed-width big-endian u64.
    pub fn get_u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("took 8 bytes")))
    }

    /// Reads a fixed-width big-endian u128.
    pub fn get_u128(&mut self) -> Result<u128, DecodeError> {
        Ok(u128::from_be_bytes(self.take(16)?.try_into().expect("took 16 bytes")))
    }

    /// Reads a length-prefixed byte string. The prefix is validated
    /// against the remaining input *before* any allocation, so a
    /// hostile length cannot balloon memory.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.get_u64()?;
        if len > self.remaining() as u64 {
            return Err(DecodeError::BadLength);
        }
        self.take(len as usize)
    }

    /// Reads a 32-byte digest (fixed width, no prefix).
    pub fn get_digest(&mut self) -> Result<wedge_crypto::Digest, DecodeError> {
        let bytes: [u8; 32] = self.take(32)?.try_into().expect("took 32 bytes");
        Ok(wedge_crypto::Digest::from_bytes(bytes))
    }

    /// Reads a 32-byte Schnorr signature (fixed width, no prefix).
    pub fn get_signature(&mut self) -> Result<wedge_crypto::Signature, DecodeError> {
        let bytes: [u8; 32] = self.take(32)?.try_into().expect("took 32 bytes");
        Ok(wedge_crypto::Signature::from_bytes(&bytes))
    }

    /// Reads a presence-tagged optional field written by
    /// [`Encoder::put_option`]. Any presence byte other than 0/1 is
    /// malformed.
    pub fn get_option<T>(
        &mut self,
        decode: impl FnOnce(&mut Self) -> Result<T, DecodeError>,
    ) -> Result<Option<T>, DecodeError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(decode(self)?)),
            _ => Err(DecodeError::Malformed("option presence byte")),
        }
    }

    /// Reads a length prefix for a repeated field, rejecting counts
    /// that could not possibly fit in the remaining input (each
    /// element occupies at least `min_elem_bytes`). This bounds
    /// pre-allocation against hostile counts.
    pub fn get_count(&mut self, min_elem_bytes: usize) -> Result<usize, DecodeError> {
        let count = self.get_u64()?;
        if count > (self.remaining() / min_elem_bytes.max(1)) as u64 {
            return Err(DecodeError::BadLength);
        }
        Ok(count as usize)
    }

    /// Requires every byte to have been consumed — a decoded message
    /// with leftovers is not the message that was signed.
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() != 0 {
            return Err(DecodeError::TrailingBytes);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wedge_crypto::sha256;

    #[test]
    fn tag_prefixes_output() {
        let e = Encoder::with_tag("t");
        // 8-byte length + 1 tag byte.
        assert_eq!(e.len(), 9);
    }

    #[test]
    fn length_prefix_prevents_ambiguity() {
        // ("ab", "c") must encode differently from ("a", "bc").
        let mut e1 = Encoder::with_tag("x");
        e1.put_bytes(b"ab").put_bytes(b"c");
        let mut e2 = Encoder::with_tag("x");
        e2.put_bytes(b"a").put_bytes(b"bc");
        assert_ne!(e1.finish(), e2.finish());
    }

    #[test]
    fn fixed_width_ints_are_big_endian() {
        let mut e = Encoder::default();
        e.put_u32(1);
        assert_eq!(e.finish(), vec![0, 0, 0, 1]);
    }

    #[test]
    fn digest_roundtrip_into_encoding() {
        let d = sha256(b"abc");
        let mut e = Encoder::default();
        e.put_digest(&d);
        assert_eq!(e.finish(), d.as_bytes().to_vec());
    }
}
