//! Log entries: client-signed units of data.
//!
//! Clients are authenticated (§III): every entry carries the producing
//! client's identity, a client-local sequence number (the replay /
//! idempotence handle of §IV-E), and the client's signature over the
//! canonical encoding.

use crate::enc::{DecodeError, Decoder, Encoder};
use wedge_crypto::{Identity, IdentityId, KeyRegistry, Signature};

/// A single client-signed log entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry {
    /// The producing client.
    pub client: IdentityId,
    /// Client-local monotonic sequence number. Duplicate `(client,
    /// sequence)` pairs are rejected by the edge, defeating replay
    /// attacks without extra edge-cloud communication (§IV-E).
    pub sequence: u64,
    /// Opaque payload (raw sensor data, or an encoded key-value op).
    pub payload: Vec<u8>,
    /// Client signature over the canonical encoding.
    pub signature: Signature,
}

impl Entry {
    /// Builds and signs an entry as `identity`.
    pub fn new_signed(identity: &Identity, sequence: u64, payload: Vec<u8>) -> Self {
        let mut e =
            Entry { client: identity.id, sequence, payload, signature: Signature { e: 0, s: 0 } };
        e.signature = identity.sign(&e.signing_bytes());
        e
    }

    /// The canonical bytes covered by the signature.
    pub fn signing_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::with_tag_and_capacity("wedge-entry-v1", 24 + self.payload.len());
        enc.put_u64(self.client.0).put_u64(self.sequence).put_bytes(&self.payload);
        enc.finish()
    }

    /// Exact byte length of [`Entry::encode`]'s output.
    pub fn encoded_len(&self) -> usize {
        // client + sequence + (len prefix + payload) + e + s.
        8 + 8 + 8 + self.payload.len() + 16 + 16
    }

    /// Canonical encoding *including* the signature (what blocks hash).
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.client.0)
            .put_u64(self.sequence)
            .put_bytes(&self.payload)
            .put_u128(self.signature.e)
            .put_u128(self.signature.s);
    }

    /// Inverse of [`Entry::encode`]: reads one entry from the stream.
    /// The signature is *not* verified here — decoding and trusting
    /// are separate steps.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Entry, DecodeError> {
        let client = IdentityId(dec.get_u64()?);
        let sequence = dec.get_u64()?;
        let payload = dec.get_bytes()?.to_vec();
        let e = dec.get_u128()?;
        let s = dec.get_u128()?;
        Ok(Entry { client, sequence, payload, signature: Signature { e, s } })
    }

    /// Verifies the client signature against the registry.
    pub fn verify(&self, registry: &KeyRegistry) -> bool {
        registry.verify(self.client, &self.signing_bytes(), &self.signature)
    }

    /// Approximate wire size in bytes (payload + fixed fields).
    pub fn wire_size(&self) -> u64 {
        (8 + 8 + 8 + self.payload.len() + 32) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wedge_crypto::RevocationReason;

    fn setup() -> (Identity, KeyRegistry) {
        let ident = Identity::derive("client", 1);
        let mut reg = KeyRegistry::new();
        reg.register(ident.id, ident.public()).unwrap();
        (ident, reg)
    }

    #[test]
    fn signed_entry_verifies() {
        let (ident, reg) = setup();
        let e = Entry::new_signed(&ident, 0, b"temp=72F".to_vec());
        assert!(e.verify(&reg));
    }

    #[test]
    fn tampered_payload_fails() {
        let (ident, reg) = setup();
        let mut e = Entry::new_signed(&ident, 0, b"temp=72F".to_vec());
        e.payload = b"temp=99F".to_vec();
        assert!(!e.verify(&reg));
    }

    #[test]
    fn tampered_sequence_fails() {
        let (ident, reg) = setup();
        let mut e = Entry::new_signed(&ident, 0, b"x".to_vec());
        e.sequence = 1;
        assert!(!e.verify(&reg));
    }

    #[test]
    fn unregistered_client_fails() {
        let ident = Identity::derive("client", 2);
        let reg = KeyRegistry::new();
        let e = Entry::new_signed(&ident, 0, b"x".to_vec());
        assert!(!e.verify(&reg));
    }

    #[test]
    fn revoked_client_fails() {
        let (ident, mut reg) = setup();
        let e = Entry::new_signed(&ident, 0, b"x".to_vec());
        reg.revoke(ident.id, RevocationReason::Administrative("test".into()));
        assert!(!e.verify(&reg));
    }

    #[test]
    fn wire_size_tracks_payload() {
        let (ident, _) = setup();
        let small = Entry::new_signed(&ident, 0, vec![0; 10]);
        let large = Entry::new_signed(&ident, 0, vec![0; 1000]);
        assert_eq!(large.wire_size() - small.wire_size(), 990);
    }
}
