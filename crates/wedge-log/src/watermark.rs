//! Gossip watermarks for omission detection (§IV-E).
//!
//! A malicious edge can deny having a block ("omission attack"). The
//! cloud bounds this by periodically gossiping a signed
//! `(timestamp, log length)` statement per edge; a client holding a
//! gossip message knows every block id below `log_len` exists, so a
//! negative read response for such an id is provable misbehaviour.

use crate::enc::{DecodeError, Decoder, Encoder};
use wedge_crypto::{Identity, IdentityId, KeyRegistry, Signature};

/// A cloud-signed statement: "as of `timestamp_ns`, edge `edge`'s log
/// has `log_len` contiguously certified blocks".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GossipWatermark {
    /// The edge node the statement is about.
    pub edge: IdentityId,
    /// Virtual time at which the cloud issued the statement.
    pub timestamp_ns: u64,
    /// Number of contiguously certified blocks (ids `0..log_len`).
    pub log_len: u64,
    /// Cloud signature.
    pub signature: Signature,
}

impl GossipWatermark {
    fn signing_bytes(edge: IdentityId, timestamp_ns: u64, log_len: u64) -> Vec<u8> {
        let mut enc = Encoder::with_tag_and_capacity("wedge-gossip-v1", 24);
        enc.put_u64(edge.0).put_u64(timestamp_ns).put_u64(log_len);
        enc.finish()
    }

    /// Issues a signed watermark as the cloud.
    pub fn issue(cloud: &Identity, edge: IdentityId, timestamp_ns: u64, log_len: u64) -> Self {
        let signature = cloud.sign(&Self::signing_bytes(edge, timestamp_ns, log_len));
        GossipWatermark { edge, timestamp_ns, log_len, signature }
    }

    /// Verifies the cloud's signature.
    pub fn verify(&self, cloud_id: IdentityId, registry: &KeyRegistry) -> bool {
        registry.verify(
            cloud_id,
            &Self::signing_bytes(self.edge, self.timestamp_ns, self.log_len),
            &self.signature,
        )
    }

    /// True iff this watermark proves block `bid` exists.
    pub fn proves_existence(&self, bid: u64) -> bool {
        bid < self.log_len
    }

    /// Canonical wire bytes: the signed fields plus the signature
    /// (what a networked driver transmits; the signing bytes stay
    /// signature-free, as signatures never sign themselves).
    pub fn encode_wire(&self) -> Vec<u8> {
        let mut enc = Encoder::with_tag_and_capacity("wedge-gossip-wire-v1", 56);
        enc.put_u64(self.edge.0)
            .put_u64(self.timestamp_ns)
            .put_u64(self.log_len)
            .put_u128(self.signature.e)
            .put_u128(self.signature.s);
        enc.finish()
    }

    /// Inverse of [`GossipWatermark::encode_wire`]. The signature is
    /// *not* verified here — call [`GossipWatermark::verify`] on the
    /// result before trusting it.
    pub fn decode_wire(bytes: &[u8]) -> Result<GossipWatermark, DecodeError> {
        let mut dec = Decoder::new(bytes);
        dec.expect_tag("wedge-gossip-wire-v1")?;
        let edge = IdentityId(dec.get_u64()?);
        let timestamp_ns = dec.get_u64()?;
        let log_len = dec.get_u64()?;
        let e = dec.get_u128()?;
        let s = dec.get_u128()?;
        dec.finish()?;
        Ok(GossipWatermark { edge, timestamp_ns, log_len, signature: Signature { e, s } })
    }

    /// Nestable encoding (no domain tag — the enclosing message's
    /// envelope already routes the bytes): the signed fields plus the
    /// signature.
    pub fn encode_into(&self, enc: &mut Encoder) {
        enc.put_u64(self.edge.0)
            .put_u64(self.timestamp_ns)
            .put_u64(self.log_len)
            .put_signature(&self.signature);
    }

    /// Inverse of [`GossipWatermark::encode_into`]. The signature is
    /// *not* verified here.
    pub fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(GossipWatermark {
            edge: IdentityId(dec.get_u64()?),
            timestamp_ns: dec.get_u64()?,
            log_len: dec.get_u64()?,
            signature: dec.get_signature()?,
        })
    }

    /// Wire size of a gossip message.
    pub const WIRE_SIZE: u64 = 8 + 8 + 8 + 32;

    /// Exact byte length of [`GossipWatermark::encode_into`]'s output.
    pub const ENCODED_LEN: usize = Self::WIRE_SIZE as usize;
}

/// Client-side tracker keeping the freshest watermark per edge.
#[derive(Default, Debug)]
pub struct WatermarkTracker {
    latest: std::collections::HashMap<IdentityId, GossipWatermark>,
}

impl WatermarkTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a verified watermark, keeping the freshest per edge.
    pub fn record(&mut self, wm: GossipWatermark) {
        let keep = match self.latest.get(&wm.edge) {
            Some(existing) => wm.timestamp_ns >= existing.timestamp_ns,
            None => true,
        };
        if keep {
            self.latest.insert(wm.edge, wm);
        }
    }

    /// The freshest watermark for `edge`.
    pub fn latest(&self, edge: IdentityId) -> Option<&GossipWatermark> {
        self.latest.get(&edge)
    }

    /// True iff a recorded watermark proves block `bid` exists at
    /// `edge` — i.e. a "not available" answer is an omission attack.
    pub fn detects_omission(&self, edge: IdentityId, bid: u64) -> bool {
        self.latest(edge).is_some_and(|wm| wm.proves_existence(bid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud_and_registry() -> (Identity, KeyRegistry) {
        let cloud = Identity::derive("cloud", 0);
        let mut reg = KeyRegistry::new();
        reg.register(cloud.id, cloud.public()).unwrap();
        (cloud, reg)
    }

    #[test]
    fn watermark_roundtrip() {
        let (cloud, reg) = cloud_and_registry();
        let wm = GossipWatermark::issue(&cloud, IdentityId(3), 1_000, 42);
        assert!(wm.verify(cloud.id, &reg));
        assert!(wm.proves_existence(41));
        assert!(!wm.proves_existence(42));
    }

    #[test]
    fn tampered_watermark_rejected() {
        let (cloud, reg) = cloud_and_registry();
        let mut wm = GossipWatermark::issue(&cloud, IdentityId(3), 1_000, 42);
        wm.log_len = 100;
        assert!(!wm.verify(cloud.id, &reg));
    }

    #[test]
    fn tracker_keeps_freshest() {
        let (cloud, _) = cloud_and_registry();
        let mut tr = WatermarkTracker::new();
        tr.record(GossipWatermark::issue(&cloud, IdentityId(3), 2_000, 50));
        tr.record(GossipWatermark::issue(&cloud, IdentityId(3), 1_000, 40)); // stale
        assert_eq!(tr.latest(IdentityId(3)).unwrap().log_len, 50);
    }

    #[test]
    fn omission_detection() {
        let (cloud, _) = cloud_and_registry();
        let mut tr = WatermarkTracker::new();
        tr.record(GossipWatermark::issue(&cloud, IdentityId(3), 2_000, 10));
        // Edge claims block 5 (< 10) is unavailable: provable omission.
        assert!(tr.detects_omission(IdentityId(3), 5));
        // Block 10 is beyond the watermark: not provable (yet).
        assert!(!tr.detects_omission(IdentityId(3), 10));
        // Unknown edge: nothing to prove.
        assert!(!tr.detects_omission(IdentityId(4), 0));
    }
}
