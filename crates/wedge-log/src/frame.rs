//! The length-framed wire envelope for protocol messages.
//!
//! Every protocol message that crosses a byte boundary travels inside
//! one frame:
//!
//! ```text
//! magic (4B "WDGC") | version (1B) | kind (1B) | payload_len (4B BE) | payload
//! ```
//!
//! The envelope is deliberately dumb: it identifies the protocol
//! (magic), rules out incompatible peers (version), routes to the
//! right payload codec (kind), and bounds the read (length, checked
//! against [`MAX_FRAME_PAYLOAD`] *before* any allocation — frames come
//! from untrusted peers). Payload semantics live with the payload
//! codecs (`wedge-core`'s `WireMsg`).
//!
//! Two consumption styles:
//! - [`decode_frame`] / [`Frame::encode`] for whole in-memory buffers
//!   (tests, datagram-style transports);
//! - [`read_frame`] / [`write_frame`] for `std::io` streams (the
//!   `wedge-net` TCP runtime) — `read_frame` distinguishes clean EOF
//!   (`Ok(None)`, the peer closed between frames) from truncation
//!   mid-frame (an error).

use crate::enc::DecodeError;
use std::io::{self, ErrorKind, Read, Write};

/// Frame magic: identifies a WedgeChain protocol stream.
pub const FRAME_MAGIC: [u8; 4] = *b"WDGC";

/// Current wire-format version. Bump on any incompatible change to
/// the envelope or a payload codec.
pub const FRAME_VERSION: u8 = 1;

/// Upper bound on a frame payload (16 MiB). A hostile length prefix
/// beyond this is rejected before any buffer is sized. Generous: the
/// largest honest message is a merge request shipping two full levels
/// of pages.
pub const MAX_FRAME_PAYLOAD: u32 = 16 * 1024 * 1024;

/// Envelope overhead in bytes (magic + version + kind + length).
pub const FRAME_HEADER_LEN: usize = 10;

/// A decoded envelope: the payload kind tag plus the raw payload
/// bytes, not yet interpreted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Payload type tag (routes to the message codec).
    pub kind: u8,
    /// The raw payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Encodes the full frame (header + payload) into one buffer.
    ///
    /// # Panics
    /// Panics if the payload exceeds [`MAX_FRAME_PAYLOAD`] — an honest
    /// sender never produces such a frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(FRAME_HEADER_LEN + self.payload.len());
        append_frame_header(&mut out, self.kind, self.payload.len())
            .expect("oversized frame payload");
        out.extend_from_slice(&self.payload);
        out
    }
}

/// Validates a frame header, returning the payload length.
fn check_header(header: &[u8; FRAME_HEADER_LEN]) -> Result<(u8, u32), DecodeError> {
    if header[..4] != FRAME_MAGIC {
        return Err(DecodeError::BadTag);
    }
    if header[4] != FRAME_VERSION {
        return Err(DecodeError::Malformed("unsupported frame version"));
    }
    let kind = header[5];
    let len = u32::from_be_bytes(header[6..10].try_into().expect("4 bytes"));
    if len > MAX_FRAME_PAYLOAD {
        return Err(DecodeError::BadLength);
    }
    Ok((kind, len))
}

/// Decodes exactly one frame from a complete buffer, rejecting
/// truncation, hostile lengths, and trailing bytes.
pub fn decode_frame(bytes: &[u8]) -> Result<Frame, DecodeError> {
    if bytes.len() < FRAME_HEADER_LEN {
        return Err(DecodeError::UnexpectedEof);
    }
    let header: [u8; FRAME_HEADER_LEN] = bytes[..FRAME_HEADER_LEN].try_into().expect("checked");
    let (kind, len) = check_header(&header)?;
    let body = &bytes[FRAME_HEADER_LEN..];
    if (body.len() as u64) < len as u64 {
        return Err(DecodeError::UnexpectedEof);
    }
    if body.len() as u64 > len as u64 {
        return Err(DecodeError::TrailingBytes);
    }
    Ok(Frame { kind, payload: body.to_vec() })
}

/// Appends a frame header for a payload of `payload_len` bytes to a
/// buffer. The caller appends exactly `payload_len` payload bytes
/// immediately after, producing the contiguous `[header | payload]`
/// layout a single `write_all` can ship. Refuses oversized payloads
/// with `InvalidInput` before touching the buffer, mirroring
/// [`write_frame`].
pub fn append_frame_header(buf: &mut Vec<u8>, kind: u8, payload_len: usize) -> io::Result<()> {
    if payload_len > MAX_FRAME_PAYLOAD as usize {
        return Err(io::Error::new(ErrorKind::InvalidInput, "oversized frame payload"));
    }
    buf.reserve(FRAME_HEADER_LEN + payload_len);
    buf.extend_from_slice(&FRAME_MAGIC);
    buf.push(FRAME_VERSION);
    buf.push(kind);
    buf.extend_from_slice(&(payload_len as u32).to_be_bytes());
    Ok(())
}

/// Writes one frame to a stream (header + payload, then flush).
///
/// A payload beyond [`MAX_FRAME_PAYLOAD`] is refused with
/// `InvalidInput` *before* any bytes hit the stream — a service loop
/// must degrade to message loss (which retries and dispute deadlines
/// already handle), never panic mid-protocol.
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_PAYLOAD as usize {
        return Err(io::Error::new(ErrorKind::InvalidInput, "oversized frame payload"));
    }
    let mut header = [0u8; FRAME_HEADER_LEN];
    header[..4].copy_from_slice(&FRAME_MAGIC);
    header[4] = FRAME_VERSION;
    header[5] = kind;
    header[6..10].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame from a stream. Returns `Ok(None)` on a clean EOF
/// *before* the first header byte (the peer closed the connection
/// between frames); EOF mid-frame is `UnexpectedEof` corruption. The
/// payload buffer is sized only after the length passed the
/// [`MAX_FRAME_PAYLOAD`] guard.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Frame>> {
    let mut payload = Vec::new();
    Ok(read_frame_into(r, &mut payload)?.map(|kind| Frame { kind, payload }))
}

/// [`read_frame`]'s buffer-reusing twin: reads one frame's payload
/// into a caller-owned buffer (cleared and resized to the payload
/// length, keeping its capacity across frames) and returns the kind
/// tag, or `Ok(None)` on a clean EOF before the first header byte.
pub fn read_frame_into(r: &mut impl Read, payload: &mut Vec<u8>) -> io::Result<Option<u8>> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    let mut filled = 0usize;
    while filled < FRAME_HEADER_LEN {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    ErrorKind::UnexpectedEof,
                    DecodeError::UnexpectedEof.to_string(),
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let (kind, len) =
        check_header(&header).map_err(|e| io::Error::new(ErrorKind::InvalidData, e.to_string()))?;
    payload.clear();
    payload.resize(len as usize, 0);
    r.read_exact(payload)?;
    Ok(Some(kind))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_buffer_and_stream() {
        let frame = Frame { kind: 7, payload: b"hello wedge".to_vec() };
        let bytes = frame.encode();
        assert_eq!(decode_frame(&bytes), Ok(frame.clone()));

        let mut stream = Vec::new();
        write_frame(&mut stream, frame.kind, &frame.payload).unwrap();
        assert_eq!(stream, bytes, "stream and buffer encodings agree");
        let mut cursor = &stream[..];
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(frame));
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF between frames");
    }

    #[test]
    fn bad_magic_version_and_length_rejected() {
        let good = Frame { kind: 1, payload: vec![0xAB; 8] }.encode();

        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert_eq!(decode_frame(&bad), Err(DecodeError::BadTag));

        let mut bad = good.clone();
        bad[4] = FRAME_VERSION + 1;
        assert!(matches!(decode_frame(&bad), Err(DecodeError::Malformed(_))));

        // A hostile length prefix fails before any allocation.
        let mut bad = good.clone();
        bad[6..10].copy_from_slice(&u32::MAX.to_be_bytes());
        assert_eq!(decode_frame(&bad), Err(DecodeError::BadLength));

        let mut trailing = good;
        trailing.push(0);
        assert_eq!(decode_frame(&trailing), Err(DecodeError::TrailingBytes));
    }

    #[test]
    fn oversized_payload_is_an_error_not_a_panic() {
        let huge = vec![0u8; MAX_FRAME_PAYLOAD as usize + 1];
        let mut sink = Vec::new();
        let err = write_frame(&mut sink, 1, &huge).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidInput);
        assert!(sink.is_empty(), "nothing written for a refused frame");
    }

    #[test]
    fn truncation_always_errors() {
        let bytes = Frame { kind: 3, payload: b"payload".to_vec() }.encode();
        for cut in 0..bytes.len() {
            assert!(decode_frame(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Stream: EOF mid-frame is corruption, not a clean close.
        for cut in 1..bytes.len() {
            let mut cursor = &bytes[..cut];
            assert!(read_frame(&mut cursor).is_err(), "stream cut at {cut}");
        }
    }
}
