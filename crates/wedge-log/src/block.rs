//! Blocks: the unit of commitment and certification.
//!
//! An edge node batches client entries into blocks (§III). Block ids
//! are unique monotonic numbers *per edge node*. The block's digest —
//! a one-way hash over the id, the owning edge, and every entry — is
//! what the cloud certifies (data-free certification, §IV-B): agreeing
//! on the digest is agreeing on the content.

use crate::enc::{DecodeError, Decoder, Encoder};
use crate::entry::Entry;
use std::fmt;
use wedge_crypto::{Digest, IdentityId, KeyRegistry};

/// Monotonic per-edge block identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct BlockId(pub u64);

impl BlockId {
    /// The next block id.
    pub fn next(&self) -> BlockId {
        BlockId(self.0 + 1)
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bid:{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A sealed batch of entries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// The edge node that sealed this block. Block ids are only unique
    /// relative to one edge node (§III), so the digest binds both.
    pub edge: IdentityId,
    /// This block's id in the edge node's log.
    pub id: BlockId,
    /// The batched client entries.
    pub entries: Vec<Entry>,
    /// Virtual time (ns) at which the block was sealed; feeds the
    /// LSMerkle page timestamp and freshness checks.
    pub sealed_at_ns: u64,
}

impl Block {
    /// Exact byte length of [`Block::canonical_bytes`].
    pub fn canonical_len(&self) -> usize {
        // Tag ("wedge-block-v1" behind a u64 length prefix) + edge +
        // id + sealed_at_ns + entry count + entries.
        8 + 14 + 8 + 8 + 8 + 8 + self.entries.iter().map(|e| e.encoded_len()).sum::<usize>()
    }

    /// Canonical bytes of the whole block (id + edge + entries).
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::with_tag_and_capacity("wedge-block-v1", self.canonical_len() - 22);
        self.encode_canonical_body(&mut enc);
        enc.finish()
    }

    /// Appends everything after the domain tag to `enc`. Split out so
    /// wire codecs that already wrote the tag (or a length prefix)
    /// can stream the block without building an intermediate `Vec`.
    fn encode_canonical_body(&self, enc: &mut Encoder) {
        enc.put_u64(self.edge.0).put_u64(self.id.0).put_u64(self.sealed_at_ns);
        enc.put_u64(self.entries.len() as u64);
        for e in &self.entries {
            e.encode(enc);
        }
    }

    /// Appends the canonical bytes (tag included) directly to an
    /// in-progress encoding — byte-identical to
    /// `enc.put_bytes(&block.canonical_bytes())` minus the length
    /// prefix, without materializing the intermediate buffer.
    pub fn encode_canonical_into(&self, enc: &mut Encoder) {
        enc.put_bytes(b"wedge-block-v1");
        self.encode_canonical_body(enc);
    }

    /// The block digest the cloud certifies.
    pub fn digest(&self) -> Digest {
        wedge_crypto::sha256(&self.canonical_bytes())
    }

    /// Inverse of [`Block::canonical_bytes`]: decodes a whole block,
    /// rejecting truncation and trailing bytes. Because the canonical
    /// bytes are exactly what [`Block::digest`] hashes, a decoded
    /// block re-encodes to the same bytes and therefore the same
    /// digest — the property the networked driver's certification
    /// path depends on.
    pub fn decode(bytes: &[u8]) -> Result<Block, DecodeError> {
        let mut dec = Decoder::new(bytes);
        dec.expect_tag("wedge-block-v1")?;
        let edge = IdentityId(dec.get_u64()?);
        let id = BlockId(dec.get_u64()?);
        let sealed_at_ns = dec.get_u64()?;
        let count = dec.get_u64()?;
        // Each entry is ≥ 48 bytes on the wire; an absurd count fails
        // fast instead of pre-allocating hostile capacity.
        if count > (bytes.len() as u64) / 48 {
            return Err(DecodeError::BadLength);
        }
        let mut entries = Vec::with_capacity(count as usize);
        for _ in 0..count {
            entries.push(Entry::decode(&mut dec)?);
        }
        dec.finish()?;
        Ok(Block { edge, id, entries, sealed_at_ns })
    }

    /// Verifies every entry's client signature.
    pub fn verify_entries(&self, registry: &KeyRegistry) -> bool {
        self.entries.iter().all(|e| e.verify(registry))
    }

    /// True iff the given client has at least one entry in this block.
    pub fn contains_client(&self, client: IdentityId) -> bool {
        self.entries.iter().any(|e| e.client == client)
    }

    /// True iff the block contains this exact entry.
    pub fn contains_entry(&self, entry: &Entry) -> bool {
        self.entries.iter().any(|e| e == entry)
    }

    /// Approximate wire size when shipping the full block. `u64`:
    /// merge requests sum page sizes into this — a multi-GiB merge
    /// must not wrap the accounting in release builds.
    pub fn wire_size(&self) -> u64 {
        24 + self.entries.iter().map(|e| e.wire_size()).sum::<u64>()
    }

    /// Number of operations (entries) in the block.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff the block holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wedge_crypto::Identity;

    fn sample_block(n: usize) -> Block {
        let client = Identity::derive("client", 1);
        let entries =
            (0..n).map(|i| Entry::new_signed(&client, i as u64, vec![i as u8; 16])).collect();
        Block { edge: IdentityId(100), id: BlockId(7), entries, sealed_at_ns: 5_000 }
    }

    #[test]
    fn digest_is_deterministic() {
        assert_eq!(sample_block(3).digest(), sample_block(3).digest());
    }

    #[test]
    fn digest_binds_id_edge_and_content() {
        let b = sample_block(3);
        let mut other = b.clone();
        other.id = BlockId(8);
        assert_ne!(b.digest(), other.digest());
        let mut other = b.clone();
        other.edge = IdentityId(101);
        assert_ne!(b.digest(), other.digest());
        let mut other = b.clone();
        other.entries.pop();
        assert_ne!(b.digest(), other.digest());
    }

    #[test]
    fn entry_verification() {
        let b = sample_block(2);
        let client = Identity::derive("client", 1);
        let mut reg = KeyRegistry::new();
        reg.register(client.id, client.public()).unwrap();
        assert!(b.verify_entries(&reg));
        let mut tampered = b.clone();
        tampered.entries[0].payload = b"evil".to_vec();
        assert!(!tampered.verify_entries(&reg));
    }

    #[test]
    fn contains_checks() {
        let b = sample_block(2);
        assert!(b.contains_client(IdentityId(1)));
        assert!(!b.contains_client(IdentityId(2)));
        assert!(b.contains_entry(&b.entries[0]));
        let client = Identity::derive("client", 1);
        let foreign = Entry::new_signed(&client, 99, b"zzz".to_vec());
        assert!(!b.contains_entry(&foreign));
    }

    #[test]
    fn block_id_ordering() {
        assert!(BlockId(1) < BlockId(2));
        assert_eq!(BlockId(1).next(), BlockId(2));
    }

    #[test]
    fn wire_size_scales() {
        assert!(sample_block(10).wire_size() > sample_block(1).wire_size());
    }
}
