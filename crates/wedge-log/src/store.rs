//! The edge node's append-only block log.
//!
//! Stores sealed blocks by id and tracks each block's certification
//! state (Phase I until the cloud's block-proof arrives, then
//! Phase II). Read requests are served from here with the best
//! available proof (§IV-D2).

use crate::block::{Block, BlockId};
use crate::cert::{BlockProof, CommitPhase};
use std::collections::BTreeMap;

/// A block plus its certification state.
#[derive(Clone, Debug)]
pub struct StoredBlock {
    /// The sealed block.
    pub block: Block,
    /// Cloud proof, once certified.
    pub proof: Option<BlockProof>,
}

impl StoredBlock {
    /// The block's current commit phase.
    pub fn phase(&self) -> CommitPhase {
        if self.proof.is_some() {
            CommitPhase::Phase2
        } else {
            CommitPhase::Phase1
        }
    }
}

/// Append-only log of sealed blocks, ordered by id.
#[derive(Default, Debug)]
pub struct LogStore {
    blocks: BTreeMap<BlockId, StoredBlock>,
}

impl LogStore {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sealed block. Panics on id reuse — sealing is
    /// monotonic by construction, so reuse is a logic error.
    pub fn append(&mut self, block: Block) {
        let id = block.id;
        let prev = self.blocks.insert(id, StoredBlock { block, proof: None });
        assert!(prev.is_none(), "block id {id} appended twice");
    }

    /// Attaches a cloud proof to its block. Returns `false` if the
    /// block is unknown (e.g. proof arrived for a garbage-collected
    /// block).
    pub fn attach_proof(&mut self, proof: BlockProof) -> bool {
        match self.blocks.get_mut(&proof.bid) {
            Some(sb) => {
                sb.proof = Some(proof);
                true
            }
            None => false,
        }
    }

    /// Fetches a stored block.
    pub fn get(&self, bid: BlockId) -> Option<&StoredBlock> {
        self.blocks.get(&bid)
    }

    /// Number of blocks in the log.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True iff the log is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Count of Phase II (certified) blocks.
    pub fn certified_count(&self) -> usize {
        self.blocks.values().filter(|b| b.proof.is_some()).count()
    }

    /// Iterates blocks in id order.
    pub fn iter(&self) -> impl Iterator<Item = &StoredBlock> {
        self.blocks.values()
    }

    /// Ids of blocks still awaiting certification (for retry loops).
    pub fn uncertified_ids(&self) -> Vec<BlockId> {
        self.blocks.values().filter(|b| b.proof.is_none()).map(|b| b.block.id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::Entry;
    use wedge_crypto::{Identity, IdentityId};

    fn block(id: u64) -> Block {
        let c = Identity::derive("client", 1);
        Block {
            edge: IdentityId(9),
            id: BlockId(id),
            entries: vec![Entry::new_signed(&c, id, vec![1, 2, 3])],
            sealed_at_ns: id * 1000,
        }
    }

    #[test]
    fn append_and_get() {
        let mut log = LogStore::new();
        log.append(block(0));
        log.append(block(1));
        assert_eq!(log.len(), 2);
        assert_eq!(log.get(BlockId(1)).unwrap().block.id, BlockId(1));
        assert!(log.get(BlockId(2)).is_none());
    }

    #[test]
    fn phase_transitions_with_proof() {
        let cloud = Identity::derive("cloud", 0);
        let mut log = LogStore::new();
        let b = block(0);
        let digest = b.digest();
        log.append(b);
        assert_eq!(log.get(BlockId(0)).unwrap().phase(), CommitPhase::Phase1);
        let proof = BlockProof::issue(&cloud, IdentityId(9), BlockId(0), digest);
        assert!(log.attach_proof(proof));
        assert_eq!(log.get(BlockId(0)).unwrap().phase(), CommitPhase::Phase2);
        assert_eq!(log.certified_count(), 1);
    }

    #[test]
    fn proof_for_unknown_block_is_reported() {
        let cloud = Identity::derive("cloud", 0);
        let mut log = LogStore::new();
        let proof =
            BlockProof::issue(&cloud, IdentityId(9), BlockId(5), wedge_crypto::sha256(b"x"));
        assert!(!log.attach_proof(proof));
    }

    #[test]
    fn uncertified_tracking() {
        let cloud = Identity::derive("cloud", 0);
        let mut log = LogStore::new();
        for i in 0..3 {
            log.append(block(i));
        }
        let digest = log.get(BlockId(1)).unwrap().block.digest();
        log.attach_proof(BlockProof::issue(&cloud, IdentityId(9), BlockId(1), digest));
        assert_eq!(log.uncertified_ids(), vec![BlockId(0), BlockId(2)]);
    }

    #[test]
    #[should_panic(expected = "appended twice")]
    fn duplicate_append_panics() {
        let mut log = LogStore::new();
        log.append(block(0));
        log.append(block(0));
    }

    #[test]
    fn iter_in_id_order() {
        let mut log = LogStore::new();
        log.append(block(2));
        log.append(block(0));
        log.append(block(1));
        let ids: Vec<_> = log.iter().map(|b| b.block.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
