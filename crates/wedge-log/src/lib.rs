//! # wedge-log
//!
//! WedgeChain's logging layer (§III–IV of the paper): client-signed
//! [`entry::Entry`]s are batched by a [`buffer::BlockBuffer`] into
//! [`block::Block`]s, appended to a [`store::LogStore`], and certified
//! by the cloud through the [`cert`] module's [`cert::BlockProof`] /
//! [`cert::CertLedger`] pair. [`watermark`] provides the signed gossip
//! that bounds omission attacks.
//!
//! The protocol logic that moves these types between nodes lives in
//! `wedge-core`; this crate is the pure data layer and is fully
//! testable without a network.

#![forbid(unsafe_code)]

pub mod block;
pub mod buffer;
pub mod cert;
pub mod enc;
pub mod entry;
pub mod frame;
pub mod reserve;
pub mod store;
pub mod watermark;

pub use block::{Block, BlockId};
pub use buffer::{BlockBuffer, PushOutcome};
pub use cert::{BlockProof, CertLedger, CertOutcome, CommitPhase};
pub use enc::{DecodeError, Decoder, Encoder};
pub use entry::Entry;
pub use frame::{
    append_frame_header, decode_frame, read_frame, read_frame_into, write_frame, Frame,
    FRAME_HEADER_LEN, FRAME_MAGIC, FRAME_VERSION, MAX_FRAME_PAYLOAD,
};
pub use reserve::{LogPosition, PositionedRequest, Reservation, ReservePolicy, ReservingBuffer};
pub use store::{LogStore, StoredBlock};
pub use watermark::{GossipWatermark, WatermarkTracker};
