//! Property-style tests for the logging layer.
//!
//! No third-party crates are available in the build environment, so
//! these run each property over deterministic SplitMix64-generated
//! case streams instead of proptest.

use std::collections::{HashMap, HashSet};
use wedge_crypto::{sha256, Identity, IdentityId, KeyRegistry};
use wedge_log::{
    BlockBuffer, BlockId, BlockProof, CertLedger, CertOutcome, Entry, GossipWatermark, PushOutcome,
};

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

#[test]
fn buffer_seals_preserve_order() {
    for case in 0..48u64 {
        let mut rng = Rng::new(0xB0FF ^ case);
        let client = Identity::derive("client", 1);
        let batch = 1 + rng.below(9) as usize;
        let mut buf = BlockBuffer::new(IdentityId(9), batch);
        let mut seq = 0u64;
        let mut sealed = Vec::new();
        for _ in 0..1 + rng.below(11) {
            for _ in 0..1 + rng.below(29) {
                let outcome = buf.push(Entry::new_signed(&client, seq, vec![1]));
                assert_ne!(outcome, PushOutcome::DuplicateRejected);
                seq += 1;
                if buf.pending_len() >= batch {
                    sealed.push(buf.seal(0).unwrap());
                }
            }
        }
        if let Some(b) = buf.seal(0) {
            sealed.push(b);
        }
        // Monotonic ids, contiguous from 0.
        for (i, b) in sealed.iter().enumerate() {
            assert_eq!(b.id, BlockId(i as u64));
        }
        // Entries across blocks are the original sequence order.
        let seqs: Vec<u64> =
            sealed.iter().flat_map(|b| b.entries.iter().map(|e| e.sequence)).collect();
        let expect: Vec<u64> = (0..seq).collect();
        assert_eq!(seqs, expect, "case {case}");
    }
}

#[test]
fn replay_window() {
    for case in 0..48u64 {
        let mut rng = Rng::new(0x3E9 ^ case);
        let client = Identity::derive("client", 1);
        let mut buf = BlockBuffer::new(IdentityId(9), 1 << 20);
        let mut hi: Option<u64> = None;
        for _ in 0..1 + rng.below(79) {
            let s = rng.below(40);
            let outcome = buf.push(Entry::new_signed(&client, s, vec![0]));
            let fresh = hi.is_none_or(|h| s > h);
            if fresh {
                assert_eq!(outcome, PushOutcome::Buffered);
                hi = Some(s);
            } else {
                assert_eq!(outcome, PushOutcome::DuplicateRejected);
            }
        }
    }
}

#[test]
fn ledger_agreement() {
    for case in 0..48u64 {
        let mut rng = Rng::new(0xA9EE ^ case);
        let mut ledger = CertLedger::new();
        let mut first: HashMap<(u64, u64), u64> = Default::default();
        for _ in 0..1 + rng.below(59) {
            let (edge, bid, content) = (rng.below(4), rng.below(6), rng.below(3));
            let digest = sha256(format!("{content}").as_bytes());
            let outcome = ledger.offer(IdentityId(edge), BlockId(bid), digest);
            match first.get(&(edge, bid)) {
                None => {
                    assert_eq!(outcome, CertOutcome::Certified);
                    first.insert((edge, bid), content);
                }
                Some(&c) if c == content => {
                    assert_eq!(outcome, CertOutcome::AlreadyCertified);
                }
                Some(&c) => {
                    let expected = sha256(format!("{c}").as_bytes());
                    assert_eq!(outcome, CertOutcome::Equivocation(expected));
                }
            }
            // The certified digest never changes after first write.
            let want = sha256(format!("{}", first[&(edge, bid)]).as_bytes());
            assert_eq!(ledger.lookup(IdentityId(edge), BlockId(bid)), Some(&want));
        }
    }
}

#[test]
fn watermark_is_contiguous_prefix() {
    for case in 0..48u64 {
        let mut rng = Rng::new(0x3A7E2 ^ case);
        let mut ledger = CertLedger::new();
        let edge = IdentityId(1);
        let mut seen = HashSet::new();
        for _ in 0..1 + rng.below(39) {
            let bid = rng.below(20);
            ledger.offer(edge, BlockId(bid), sha256(&bid.to_be_bytes()));
            seen.insert(bid);
            let expect = (0u64..).take_while(|b| seen.contains(b)).count() as u64;
            assert_eq!(ledger.contiguous_len(edge), expect);
        }
    }
}

#[test]
fn signed_artifacts_bind_fields() {
    for case in 0..16u64 {
        let mut rng = Rng::new(0x516E ^ case);
        let (bid, len, ts) = (rng.below(1000), rng.below(1000), rng.below(10_000));
        let cloud = Identity::derive("cloud", 0);
        let evil = Identity::derive("evil", 7);
        let mut reg = KeyRegistry::new();
        reg.register(cloud.id, cloud.public()).unwrap();
        let d = sha256(&bid.to_be_bytes());
        let proof = BlockProof::issue(&cloud, IdentityId(5), BlockId(bid), d);
        assert!(proof.verify(cloud.id, &reg));
        let forged = BlockProof::issue(&evil, IdentityId(5), BlockId(bid), d);
        assert!(!forged.verify(cloud.id, &reg));
        let wm = GossipWatermark::issue(&cloud, IdentityId(5), ts, len);
        assert!(wm.verify(cloud.id, &reg));
        let mut bad = wm.clone();
        bad.log_len = len + 1;
        assert!(!bad.verify(cloud.id, &reg));
        assert_eq!(wm.proves_existence(bid), bid < len);
    }
}
