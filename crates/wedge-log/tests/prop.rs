//! Property-based tests for the logging layer.

use proptest::prelude::*;
use wedge_crypto::{sha256, Identity, IdentityId, KeyRegistry};
use wedge_log::{
    BlockBuffer, BlockId, BlockProof, CertLedger, CertOutcome, Entry, GossipWatermark,
    PushOutcome,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sealed blocks partition the accepted entries in order, with
    /// strictly monotonic block ids.
    #[test]
    fn buffer_seals_preserve_order(lens in proptest::collection::vec(1usize..30, 1..12),
                                   batch in 1usize..10) {
        let client = Identity::derive("client", 1);
        let mut buf = BlockBuffer::new(IdentityId(9), batch);
        let mut seq = 0u64;
        let mut sealed = Vec::new();
        for len in lens {
            for _ in 0..len {
                let outcome = buf.push(Entry::new_signed(&client, seq, vec![1]));
                prop_assert_ne!(outcome, PushOutcome::DuplicateRejected);
                seq += 1;
                if buf.pending_len() >= batch {
                    sealed.push(buf.seal(0).unwrap());
                }
            }
        }
        if let Some(b) = buf.seal(0) {
            sealed.push(b);
        }
        // Monotonic ids, contiguous from 0.
        for (i, b) in sealed.iter().enumerate() {
            prop_assert_eq!(b.id, BlockId(i as u64));
        }
        // Entries across blocks are the original sequence order.
        let seqs: Vec<u64> = sealed.iter().flat_map(|b| b.entries.iter().map(|e| e.sequence)).collect();
        let expect: Vec<u64> = (0..seq).collect();
        prop_assert_eq!(seqs, expect);
    }

    /// Replayed (client, sequence) pairs are always rejected, fresh
    /// ones always accepted.
    #[test]
    fn replay_window(seqs in proptest::collection::vec(0u64..40, 1..80)) {
        let client = Identity::derive("client", 1);
        let mut buf = BlockBuffer::new(IdentityId(9), 1 << 20);
        let mut hi: Option<u64> = None;
        for s in seqs {
            let outcome = buf.push(Entry::new_signed(&client, s, vec![0]));
            let fresh = hi.is_none_or(|h| s > h);
            if fresh {
                prop_assert_eq!(outcome, PushOutcome::Buffered);
                hi = Some(s);
            } else {
                prop_assert_eq!(outcome, PushOutcome::DuplicateRejected);
            }
        }
    }

    /// The agreement guarantee: for any interleaving of certify
    /// offers, at most one digest is ever certified per (edge, bid),
    /// and a conflicting offer is flagged as equivocation.
    #[test]
    fn ledger_agreement(offers in proptest::collection::vec((0u64..4, 0u64..6, 0u64..3), 1..60)) {
        let mut ledger = CertLedger::new();
        let mut first: std::collections::HashMap<(u64, u64), u64> = Default::default();
        for (edge, bid, content) in offers {
            let digest = sha256(format!("{content}").as_bytes());
            let outcome = ledger.offer(IdentityId(edge), BlockId(bid), digest);
            match first.get(&(edge, bid)) {
                None => {
                    prop_assert_eq!(outcome, CertOutcome::Certified);
                    first.insert((edge, bid), content);
                }
                Some(&c) if c == content => {
                    prop_assert_eq!(outcome, CertOutcome::AlreadyCertified);
                }
                Some(&c) => {
                    let expected = sha256(format!("{c}").as_bytes());
                    prop_assert_eq!(outcome, CertOutcome::Equivocation(expected));
                }
            }
            // The certified digest never changes after first write.
            let want = sha256(format!("{}", first[&(edge, bid)]).as_bytes());
            prop_assert_eq!(ledger.lookup(IdentityId(edge), BlockId(bid)), Some(&want));
        }
    }

    /// The contiguous watermark equals the smallest uncertified id.
    #[test]
    fn watermark_is_contiguous_prefix(bids in proptest::collection::vec(0u64..20, 1..40)) {
        let mut ledger = CertLedger::new();
        let edge = IdentityId(1);
        let mut seen = std::collections::HashSet::new();
        for bid in bids {
            ledger.offer(edge, BlockId(bid), sha256(&bid.to_be_bytes()));
            seen.insert(bid);
            let expect = (0u64..).take_while(|b| seen.contains(b)).count() as u64;
            prop_assert_eq!(ledger.contiguous_len(edge), expect);
        }
    }

    /// Block proofs and gossip watermarks verify only with the right
    /// signer, fields, and registry state.
    #[test]
    fn signed_artifacts_bind_fields(bid in 0u64..1000, len in 0u64..1000, ts in 0u64..10_000) {
        let cloud = Identity::derive("cloud", 0);
        let evil = Identity::derive("evil", 7);
        let mut reg = KeyRegistry::new();
        reg.register(cloud.id, cloud.public()).unwrap();
        let d = sha256(&bid.to_be_bytes());
        let proof = BlockProof::issue(&cloud, IdentityId(5), BlockId(bid), d);
        prop_assert!(proof.verify(cloud.id, &reg));
        let forged = BlockProof::issue(&evil, IdentityId(5), BlockId(bid), d);
        prop_assert!(!forged.verify(cloud.id, &reg));
        let wm = GossipWatermark::issue(&cloud, IdentityId(5), ts, len);
        prop_assert!(wm.verify(cloud.id, &reg));
        let mut bad = wm.clone();
        bad.log_len = len + 1;
        prop_assert!(!bad.verify(cloud.id, &reg));
        prop_assert_eq!(wm.proves_existence(bid), bid < len);
    }
}
