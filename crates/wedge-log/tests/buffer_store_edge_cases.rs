//! Edge-case integration tests for `BlockBuffer` (seal/push) and
//! `LogStore::uncertified_ids` ordering.

use wedge_crypto::{Identity, IdentityId};
use wedge_log::{Block, BlockBuffer, BlockId, BlockProof, Entry, LogStore, PushOutcome};

fn entry(client: &Identity, seq: u64) -> Entry {
    Entry::new_signed(client, seq, vec![seq as u8; 4])
}

fn block(id: u64) -> Block {
    let c = Identity::derive("client", 1);
    Block { edge: IdentityId(9), id: BlockId(id), entries: vec![entry(&c, id)], sealed_at_ns: id }
}

// ---- BlockBuffer::seal / push edge cases ----

#[test]
fn sealing_an_empty_buffer_yields_nothing_and_burns_no_id() {
    let c = Identity::derive("client", 1);
    let mut buf = BlockBuffer::new(IdentityId(9), 3);
    assert!(buf.seal(100).is_none());
    assert!(buf.seal(200).is_none(), "repeated empty seals stay None");
    assert_eq!(buf.next_block_id(), BlockId(0), "empty seals do not consume block ids");
    // The first real block still gets id 0.
    buf.push(entry(&c, 0));
    assert_eq!(buf.seal(300).unwrap().id, BlockId(0));
}

#[test]
fn push_signals_full_exactly_at_the_batch_boundary() {
    let c = Identity::derive("client", 1);
    let mut buf = BlockBuffer::new(IdentityId(9), 3);
    assert_eq!(buf.push(entry(&c, 0)), PushOutcome::Buffered);
    assert_eq!(buf.push(entry(&c, 1)), PushOutcome::Buffered);
    assert_eq!(buf.push(entry(&c, 2)), PushOutcome::Full, "exactly at the boundary");
    // Pushing past the boundary (seal deferred) keeps reporting Full.
    assert_eq!(buf.push(entry(&c, 3)), PushOutcome::Full);
    let b = buf.seal(7).unwrap();
    assert_eq!(b.len(), 4, "a deferred seal takes everything pending");
    assert_eq!(buf.pending_len(), 0);
}

#[test]
fn exact_boundary_seal_then_refill_continues_ids_and_replay_window() {
    let c = Identity::derive("client", 1);
    let mut buf = BlockBuffer::new(IdentityId(9), 2);
    buf.push(entry(&c, 0));
    assert_eq!(buf.push(entry(&c, 1)), PushOutcome::Full);
    let b0 = buf.seal(10).unwrap();
    assert_eq!((b0.id, b0.len()), (BlockId(0), 2));
    // Replay of a sealed sequence is still rejected after the seal.
    assert_eq!(buf.push(entry(&c, 1)), PushOutcome::DuplicateRejected);
    assert_eq!(buf.push(entry(&c, 2)), PushOutcome::Buffered);
    assert_eq!(buf.push(entry(&c, 3)), PushOutcome::Full);
    let b1 = buf.seal(20).unwrap();
    assert_eq!((b1.id, b1.len()), (BlockId(1), 2));
    assert_eq!(b1.sealed_at_ns, 20);
}

#[test]
fn batch_size_one_seals_every_entry() {
    let c = Identity::derive("client", 1);
    let mut buf = BlockBuffer::new(IdentityId(9), 1);
    for i in 0..4u64 {
        assert_eq!(buf.push(entry(&c, i)), PushOutcome::Full);
        let b = buf.seal(i).unwrap();
        assert_eq!(b.id, BlockId(i));
        assert_eq!(b.len(), 1);
    }
}

#[test]
fn align_next_id_only_moves_forward() {
    let c = Identity::derive("client", 1);
    let mut buf = BlockBuffer::new(IdentityId(9), 1);
    buf.align_next_id(BlockId(5));
    assert_eq!(buf.next_block_id(), BlockId(5), "aligns forward past preloaded blocks");
    buf.align_next_id(BlockId(2));
    assert_eq!(buf.next_block_id(), BlockId(5), "never rewinds");
    buf.push(entry(&c, 0));
    assert_eq!(buf.seal(0).unwrap().id, BlockId(5));
    assert_eq!(buf.next_block_id(), BlockId(6));
}

// ---- LogStore::uncertified_ids ordering ----

#[test]
fn uncertified_ids_are_in_ascending_id_order_despite_insertion_order() {
    let mut log = LogStore::new();
    // Append out of id order (the store orders by id internally).
    for id in [4u64, 0, 3, 1, 2] {
        log.append(block(id));
    }
    assert_eq!(
        log.uncertified_ids(),
        vec![BlockId(0), BlockId(1), BlockId(2), BlockId(3), BlockId(4)],
        "ascending id order, not insertion order"
    );
}

#[test]
fn uncertified_ids_shrink_as_proofs_attach_preserving_order() {
    let cloud = Identity::derive("cloud", 0);
    let mut log = LogStore::new();
    for id in 0..5u64 {
        log.append(block(id));
    }
    // Certify the middle, then the ends, in scrambled order.
    for id in [2u64, 4, 0] {
        let digest = log.get(BlockId(id)).unwrap().block.digest();
        assert!(log.attach_proof(BlockProof::issue(&cloud, IdentityId(9), BlockId(id), digest)));
    }
    assert_eq!(log.uncertified_ids(), vec![BlockId(1), BlockId(3)]);
    assert_eq!(log.certified_count(), 3);
    // Attaching the rest empties the list.
    for id in [3u64, 1] {
        let digest = log.get(BlockId(id)).unwrap().block.digest();
        log.attach_proof(BlockProof::issue(&cloud, IdentityId(9), BlockId(id), digest));
    }
    assert!(log.uncertified_ids().is_empty());
}

#[test]
fn reattaching_a_proof_is_idempotent_for_uncertified_tracking() {
    let cloud = Identity::derive("cloud", 0);
    let mut log = LogStore::new();
    log.append(block(0));
    log.append(block(1));
    let digest = log.get(BlockId(0)).unwrap().block.digest();
    let proof = BlockProof::issue(&cloud, IdentityId(9), BlockId(0), digest);
    assert!(log.attach_proof(proof.clone()));
    assert!(log.attach_proof(proof), "re-attach succeeds");
    assert_eq!(log.uncertified_ids(), vec![BlockId(1)]);
    assert_eq!(log.certified_count(), 1);
}
