//! Round-trip property tests for the canonical wire format: whatever
//! `Encoder` writes, `Decoder` reads back verbatim — and every way an
//! adversary can mangle the bytes (truncation, hostile length
//! prefixes, trailing garbage, tag swaps) decodes to a typed error,
//! never a panic or a wrong value.
//!
//! No third-party crates are available in the build environment, so
//! these run each property over deterministic SplitMix64-generated
//! case streams instead of proptest (matching `tests/prop.rs`).

use wedge_crypto::{IdentityId, Signature};
use wedge_log::{Block, BlockId, DecodeError, Decoder, Encoder, Entry, GossipWatermark};

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next() as u8).collect()
    }
}

/// A structurally arbitrary entry: the signature need not verify —
/// decode round-trips bytes, it does not judge them.
fn arb_entry(rng: &mut Rng) -> Entry {
    let payload_len = rng.below(200) as usize;
    Entry {
        client: IdentityId(rng.next()),
        sequence: rng.next(),
        payload: rng.bytes(payload_len),
        signature: Signature {
            e: (rng.next() as u128) << 64 | rng.next() as u128,
            s: (rng.next() as u128) << 64 | rng.next() as u128,
        },
    }
}

fn arb_block(rng: &mut Rng) -> Block {
    let entries = (0..rng.below(12)).map(|_| arb_entry(rng)).collect();
    Block {
        edge: IdentityId(rng.next()),
        id: BlockId(rng.next()),
        entries,
        sealed_at_ns: rng.next(),
    }
}

#[test]
fn entry_roundtrip() {
    for case in 0..96u64 {
        let mut rng = Rng::new(0xE17 ^ case);
        let entry = arb_entry(&mut rng);
        let mut enc = Encoder::default();
        entry.encode(&mut enc);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        let back = Entry::decode(&mut dec).expect("well-formed entry decodes");
        dec.finish().expect("nothing left over");
        assert_eq!(back, entry, "case {case}");
    }
}

#[test]
fn block_roundtrip_preserves_digest() {
    for case in 0..48u64 {
        let mut rng = Rng::new(0xB10C ^ case);
        let block = arb_block(&mut rng);
        let bytes = block.canonical_bytes();
        let back = Block::decode(&bytes).expect("well-formed block decodes");
        assert_eq!(back, block, "case {case}");
        // Decode∘encode is the identity on bytes, hence on digests —
        // what data-free certification over the wire relies on.
        assert_eq!(back.canonical_bytes(), bytes, "case {case}: bytes");
        assert_eq!(back.digest(), block.digest(), "case {case}: digest");
    }
}

#[test]
fn watermark_roundtrip() {
    for case in 0..96u64 {
        let mut rng = Rng::new(0x3A7E ^ case);
        let wm = GossipWatermark {
            edge: IdentityId(rng.next()),
            timestamp_ns: rng.next(),
            log_len: rng.next(),
            signature: Signature {
                e: (rng.next() as u128) << 64 | rng.next() as u128,
                s: (rng.next() as u128) << 64 | rng.next() as u128,
            },
        };
        let bytes = wm.encode_wire();
        let back = GossipWatermark::decode_wire(&bytes).expect("well-formed watermark decodes");
        assert_eq!(back, wm, "case {case}");
        assert_eq!(back.encode_wire(), bytes, "case {case}: bytes");
    }
}

#[test]
fn truncation_always_errors_never_panics() {
    for case in 0..24u64 {
        let mut rng = Rng::new(0x7C ^ case);
        let block = arb_block(&mut rng);
        let bytes = block.canonical_bytes();
        for cut in 0..bytes.len() {
            let err = Block::decode(&bytes[..cut]).expect_err("truncated input must fail");
            assert!(
                matches!(
                    err,
                    DecodeError::UnexpectedEof | DecodeError::BadTag | DecodeError::BadLength
                ),
                "cut at {cut}: unexpected {err:?}"
            );
        }
        let wm_bytes = GossipWatermark::issue(
            &wedge_crypto::Identity::derive("cloud", 1),
            IdentityId(5),
            rng.next(),
            rng.next(),
        )
        .encode_wire();
        for cut in 0..wm_bytes.len() {
            GossipWatermark::decode_wire(&wm_bytes[..cut]).expect_err("truncated wm must fail");
        }
    }
}

#[test]
fn trailing_bytes_rejected() {
    let mut rng = Rng::new(0x7A11);
    let block = arb_block(&mut rng);
    let mut bytes = block.canonical_bytes();
    bytes.push(0);
    assert_eq!(Block::decode(&bytes), Err(DecodeError::TrailingBytes));
}

#[test]
fn hostile_length_prefix_fails_before_allocating() {
    // A "block" claiming u64::MAX entries / payload bytes must fail on
    // the length check, not attempt the allocation.
    let mut enc = Encoder::with_tag("wedge-block-v1");
    enc.put_u64(1).put_u64(2).put_u64(3);
    enc.put_u64(u64::MAX); // entry count
    let bytes = enc.finish();
    assert_eq!(Block::decode(&bytes), Err(DecodeError::BadLength));

    let mut enc = Encoder::default();
    enc.put_u64(7).put_u64(0); // client, sequence
    enc.put_u64(u64::MAX); // payload length prefix, no payload
    let bytes = enc.finish();
    let mut dec = Decoder::new(&bytes);
    assert_eq!(Entry::decode(&mut dec), Err(DecodeError::BadLength));
}

#[test]
fn wrong_tag_rejected() {
    // A watermark's wire bytes are not a block: the tag check refuses
    // cross-type replay before any field is interpreted.
    let wm =
        GossipWatermark::issue(&wedge_crypto::Identity::derive("cloud", 1), IdentityId(5), 1, 2);
    assert!(matches!(
        Block::decode(&wm.encode_wire()),
        Err(DecodeError::BadTag | DecodeError::UnexpectedEof)
    ));
    // And a block whose tag byte is flipped no longer decodes.
    let mut rng = Rng::new(0x7A6);
    let mut bytes = arb_block(&mut rng).canonical_bytes();
    bytes[9] ^= 1; // inside the tag string (after its 8-byte length)
    assert_eq!(Block::decode(&bytes).unwrap_err(), DecodeError::BadTag);
}

#[test]
fn decoder_primitives_roundtrip() {
    for case in 0..48u64 {
        let mut rng = Rng::new(0xDEC ^ case);
        let (a, b, c) = (rng.next() as u8, rng.next() as u32, rng.next());
        let d = (rng.next() as u128) << 64 | rng.next() as u128;
        let blob_len = rng.below(64) as usize;
        let blob = rng.bytes(blob_len);
        let digest = wedge_crypto::sha256(&rng.next().to_be_bytes());
        let mut enc = Encoder::with_tag("prim-v1");
        enc.put_u8(a).put_u32(b).put_u64(c).put_u128(d).put_bytes(&blob).put_digest(&digest);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        dec.expect_tag("prim-v1").unwrap();
        assert_eq!(dec.get_u8().unwrap(), a);
        assert_eq!(dec.get_u32().unwrap(), b);
        assert_eq!(dec.get_u64().unwrap(), c);
        assert_eq!(dec.get_u128().unwrap(), d);
        assert_eq!(dec.get_bytes().unwrap(), &blob[..]);
        assert_eq!(dec.get_digest().unwrap(), digest);
        dec.finish().unwrap();
    }
}
