//! A tiny std-only scoped worker pool for embarrassingly-parallel
//! hash/verify work.
//!
//! WedgeChain's engines are sans-IO and deterministic: commands in,
//! effects out, time as an argument. The CPU-heavy leaves of that
//! work — page digests, Merkle leaf tagging, Schnorr verification —
//! are pure functions over immutable inputs, so they can fan out
//! across threads without the engines noticing. This crate provides
//! the one concurrency primitive those call sites need:
//!
//! * [`Pool::scope`] — run one closure concurrently on every lane
//!   (the caller participates as lane 0), returning only after all
//!   lanes finish. Worker panics are surfaced as a panic in the
//!   caller.
//! * [`Pool::for_each`] / [`Pool::map`] — chunked dynamic
//!   work-claiming over a slice, with `map` writing results into
//!   per-index slots so the output order always matches the input
//!   order regardless of which lane ran which item.
//!
//! # Determinism
//!
//! Nothing here introduces nondeterminism: `map` preserves input
//! order, `for_each` is only handed idempotent work (memoizing a
//! `OnceLock` digest computes the same bytes on every lane), and
//! `scope` callers partition work by index. A `Pool::new(1)` pool
//! runs everything inline on the caller thread — byte-identical to
//! any larger pool by construction, and the default everywhere so
//! unit tests (including the exact hash-count assertions, which use
//! thread-local counters) see unchanged behaviour.
//!
//! # Non-goals
//!
//! No futures, no channels-per-task, no nested scopes (re-entering
//! [`Pool::scope`] from inside a running scope deadlocks — don't),
//! no external dependencies. Fixed worker threads are spawned once
//! at construction and joined when the last [`Pool`] clone drops.
//!
//! # Unsafety
//!
//! This is the one workspace crate that cannot be
//! `#![forbid(unsafe_code)]`: the scoped-broadcast design erases the
//! scope closure's lifetime to hand it to long-lived workers. Every
//! unsafe block carries a `SAFETY:` comment; the shared invariant is
//! that [`Pool::scope`] does not return until every worker has
//! finished with the erased pointer.

#![deny(unsafe_op_in_unsafe_fn)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::MutexGuard;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A type-erased pointer to the scope closure. Only valid for the
/// duration of the [`Pool::scope`] call that installed it; `scope`
/// does not return until every worker has finished running it.
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (the bound on `scope`) and outlives
// every dereference: workers only run the job between the moment
// `scope` installs it and the moment `scope` observes `active == 0`,
// and `scope` borrows the closure for that whole window.
unsafe impl Send for Job {}

struct State {
    /// Current broadcast job, if a scope is running.
    job: Option<Job>,
    /// Bumped once per scope so workers can tell a new job from a
    /// spurious wakeup.
    generation: u64,
    /// Workers still running the current job.
    active: usize,
    /// Set by `Drop`; workers exit their loop.
    shutdown: bool,
    /// Set by a worker whose job closure panicked.
    panicked: bool,
}

struct Inner {
    state: Mutex<State>,
    /// Workers wait here for a new generation (or shutdown).
    work_cv: Condvar,
    /// The scope caller waits here for `active == 0`.
    done_cv: Condvar,
    /// Serializes concurrent `scope` callers from different threads
    /// sharing one pool (clones share the same workers).
    scope_lock: Mutex<()>,
    /// Worker thread count (lanes = workers + 1: the caller is lane 0).
    workers: usize,
}

/// Joins the workers when the last `Pool` clone drops. Kept separate
/// from `Inner` because the workers themselves hold `Arc<Inner>`.
struct Shared {
    inner: Arc<Inner>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Drop for Shared {
    fn drop(&mut self) {
        {
            let mut st = lock_ok(&self.inner.state);
            st.shutdown = true;
        }
        self.inner.work_cv.notify_all();
        for h in lock_ok(&self.handles).drain(..) {
            let _ = h.join();
        }
    }
}

/// A fixed-size scoped worker pool. Cheap to clone (clones share the
/// same worker threads); a pool of size 1 runs everything inline on
/// the caller thread and spawns nothing.
#[derive(Clone)]
pub struct Pool {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool").field("lanes", &self.lanes()).finish()
    }
}

impl Default for Pool {
    /// The inline pool: one lane, zero threads.
    fn default() -> Self {
        Pool::new(1)
    }
}

impl Pool {
    /// Builds a pool with `threads` lanes total. `threads <= 1` is
    /// the inline pool (no worker threads at all); otherwise
    /// `threads - 1` workers are spawned and the caller thread acts
    /// as the remaining lane during each scope.
    pub fn new(threads: usize) -> Pool {
        let workers = threads.max(1) - 1;
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                job: None,
                generation: 0,
                active: 0,
                shutdown: false,
                panicked: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            scope_lock: Mutex::new(()),
            workers,
        });
        let mut handles = Vec::with_capacity(workers);
        for lane in 1..=workers {
            let inner = Arc::clone(&inner);
            let h = std::thread::Builder::new()
                .name(format!("wedge-pool-{lane}"))
                .spawn(move || worker_loop(&inner, lane))
                .expect("spawn wedge-pool worker");
            handles.push(h);
        }
        Pool { shared: Arc::new(Shared { inner, handles: Mutex::new(handles) }) }
    }

    /// Builds a pool sized from the `WEDGE_POOL_THREADS` environment
    /// variable (clamped to 1..=64), defaulting to the inline pool.
    /// The CI matrix uses this to run the whole driver-level test
    /// suite at pool sizes 1 and 8 without a per-test knob.
    pub fn from_env() -> Pool {
        Pool::new(threads_from_env())
    }

    /// Total lanes (worker threads + the participating caller).
    pub fn lanes(&self) -> usize {
        self.shared.inner.workers + 1
    }

    /// True when the pool runs everything inline on the caller
    /// thread (no worker threads).
    pub fn is_inline(&self) -> bool {
        self.shared.inner.workers == 0
    }

    /// Runs `f(lane)` once per lane concurrently (`lane` in
    /// `0..lanes()`, the caller is lane 0) and returns when every
    /// lane has finished. If any lane panics, `scope` panics after
    /// all lanes have stopped. Must not be re-entered from inside a
    /// running scope on the same pool.
    pub fn scope<F>(&self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let inner = &*self.shared.inner;
        if inner.workers == 0 {
            f(0);
            return;
        }
        let _serial = inner.scope_lock.lock().unwrap_or_else(|e| e.into_inner());
        {
            let job: &(dyn Fn(usize) + Sync) = &f;
            // SAFETY: lifetime erasure only — `scope` does not return
            // (and so `f` stays alive) until every worker has finished
            // with the pointer; see `Job`.
            let job: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(job) };
            let mut st = lock_ok(&inner.state);
            st.job = Some(Job(job as *const _));
            st.generation += 1;
            st.active = inner.workers;
            st.panicked = false;
        }
        inner.work_cv.notify_all();
        // The caller is lane 0: do our share instead of just waiting.
        let caller = catch_unwind(AssertUnwindSafe(|| f(0)));
        let worker_panicked = {
            let mut st = lock_ok(&inner.state);
            while st.active > 0 {
                st = inner.done_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            st.job = None;
            st.panicked
        };
        match caller {
            Err(payload) => std::panic::resume_unwind(payload),
            Ok(()) if worker_panicked => {
                panic!("wedge-pool: a worker lane panicked during scope")
            }
            Ok(()) => {}
        }
    }

    /// Applies `f` to every item, claiming chunks of indices
    /// dynamically across lanes. Item order of *execution* is
    /// unspecified; use this only for idempotent or independent
    /// per-item work (e.g. priming `OnceLock` digest memos).
    pub fn for_each<T, F>(&self, items: &[T], f: F)
    where
        T: Sync,
        F: Fn(&T) + Sync,
    {
        if self.is_inline() || items.len() <= 1 {
            for item in items {
                f(item);
            }
            return;
        }
        let n = items.len();
        let chunk = self.chunk_size(n);
        let next = AtomicUsize::new(0);
        self.scope(|_lane| loop {
            let start = next.fetch_add(chunk, Ordering::Relaxed);
            if start >= n {
                break;
            }
            for item in &items[start..(start + chunk).min(n)] {
                f(item);
            }
        });
    }

    /// Maps `f` over the items and returns the results **in input
    /// order** — each lane writes results into the slot of the index
    /// it claimed, so the output is independent of scheduling.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send + Sync,
        F: Fn(&T) -> R + Sync,
    {
        if self.is_inline() || items.len() <= 1 {
            return items.iter().map(f).collect();
        }
        let n = items.len();
        let chunk = self.chunk_size(n);
        let slots: Vec<OnceLock<R>> = (0..n).map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        self.scope(|_lane| loop {
            let start = next.fetch_add(chunk, Ordering::Relaxed);
            if start >= n {
                break;
            }
            for i in start..(start + chunk).min(n) {
                // Each index is claimed by exactly one lane, so the
                // slot is always empty here.
                let _ = slots[i].set(f(&items[i]));
            }
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().expect("wedge-pool: map slot left unfilled"))
            .collect()
    }

    /// Chunk size for dynamic claiming: a few chunks per lane for
    /// load balance, but never less than one item.
    fn chunk_size(&self, n: usize) -> usize {
        (n / (self.lanes() * 4)).max(1)
    }
}

/// Locks ignoring poison: a panicked scope is a supported path (the
/// panic is re-raised in the caller), so pool state must stay usable
/// after one.
fn lock_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn worker_loop(inner: &Inner, lane: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = lock_ok(&inner.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != seen {
                    seen = st.generation;
                    break;
                }
                st = inner.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            // `scope` holds `active > 0` until we decrement below, so
            // the pointee outlives this borrow.
            st.job.as_ref().map(|j| j.0)
        };
        if let Some(job) = job {
            // SAFETY: see `Job`'s Send rationale — `scope` keeps the
            // closure alive until `active` hits zero.
            let f = unsafe { &*job };
            let result = catch_unwind(AssertUnwindSafe(|| f(lane)));
            let mut st = lock_ok(&inner.state);
            if result.is_err() {
                st.panicked = true;
            }
            st.active -= 1;
            if st.active == 0 {
                inner.done_cv.notify_all();
            }
        }
    }
}

/// Pool size from `WEDGE_POOL_THREADS` (clamped to 1..=64), default 1.
pub fn threads_from_env() -> usize {
    std::env::var("WEDGE_POOL_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .map(|n| n.clamp(1, 64))
        .unwrap_or(1)
}

/// CPU time consumed by the calling thread, in nanoseconds. Unlike a
/// wall clock this only advances while the thread is scheduled, so
/// per-lane measurements stay meaningful on hosts with fewer cores
/// than lanes (the bench uses it to report the critical-path length
/// of a parallel phase: the busiest lane's CPU time).
#[cfg(target_os = "linux")]
pub fn thread_cpu_ns() -> u64 {
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }
    extern "C" {
        fn clock_gettime(clk_id: i32, tp: *mut Timespec) -> i32;
    }
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
    let mut ts = Timespec { tv_sec: 0, tv_nsec: 0 };
    // SAFETY: `ts` is a valid, writable `timespec`-layout struct and
    // the clock id is a Linux constant; libc is always linked by std.
    let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    if rc != 0 {
        return 0;
    }
    (ts.tv_sec as u64).saturating_mul(1_000_000_000) + ts.tv_nsec as u64
}

/// Fallback for non-Linux hosts: a monotonic wall clock (per-thread
/// CPU time is not portably available from std).
#[cfg(not(target_os = "linux"))]
pub fn thread_cpu_ns() -> u64 {
    use std::time::Instant;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn inline_pool_spawns_nothing_and_runs_on_caller() {
        let pool = Pool::new(1);
        assert!(pool.is_inline());
        assert_eq!(pool.lanes(), 1);
        let caller = std::thread::current().id();
        pool.scope(|lane| {
            assert_eq!(std::thread::current().id(), caller);
            assert_eq!(lane, 0);
        });
        let sum = AtomicU64::new(0);
        pool.for_each(&[1u64, 2, 3], |x| {
            assert_eq!(std::thread::current().id(), caller);
            sum.fetch_add(*x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn map_preserves_input_order_at_every_size() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 4, 8] {
            let pool = Pool::new(threads);
            let got = pool.map(&items, |x| x * x);
            assert_eq!(got, expect, "order broken at {threads} threads");
        }
    }

    #[test]
    fn for_each_visits_every_item_exactly_once() {
        let hits: Vec<AtomicU64> = (0..777).map(|_| AtomicU64::new(0)).collect();
        let idx: Vec<usize> = (0..777).collect();
        let pool = Pool::new(4);
        pool.for_each(&idx, |i| {
            hits[*i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn scope_runs_every_lane() {
        let pool = Pool::new(4);
        assert_eq!(pool.lanes(), 4);
        let hits: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
        pool.scope(|lane| {
            hits[lane].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn pool_is_reusable_across_scopes_and_clones() {
        let pool = Pool::new(3);
        let clone = pool.clone();
        for round in 0..50u64 {
            let sum = AtomicU64::new(0);
            let items: Vec<u64> = (0..round + 1).collect();
            clone.for_each(&items, |x| {
                sum.fetch_add(*x, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), (round + 1) * round / 2);
        }
    }

    #[test]
    fn worker_panic_propagates_to_caller_and_pool_survives() {
        let pool = Pool::new(4);
        let items: Vec<usize> = (0..100).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.for_each(&items, |i| {
                if *i == 63 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool is still usable after a panicked scope.
        let ok = pool.map(&items, |i| i + 1);
        assert_eq!(ok.len(), 100);
        assert_eq!(ok[99], 100);
    }

    #[test]
    fn concurrent_scopes_from_clones_serialize_safely() {
        let pool = Pool::new(4);
        let mut joins = Vec::new();
        for _ in 0..4 {
            let p = pool.clone();
            joins.push(std::thread::spawn(move || {
                let items: Vec<u64> = (0..500).collect();
                let got = p.map(&items, |x| x.wrapping_mul(31));
                assert_eq!(got[499], 499u64.wrapping_mul(31));
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
    }

    #[test]
    fn env_sizing_clamps() {
        // Not testing the env var itself (process-global), just the
        // clamp arithmetic via Pool::new.
        assert_eq!(Pool::new(0).lanes(), 1);
        assert_eq!(Pool::new(64).lanes(), 64);
    }

    #[test]
    fn thread_cpu_clock_advances_under_work() {
        let t0 = thread_cpu_ns();
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        assert_ne!(acc, 1); // keep the loop alive
        assert!(thread_cpu_ns() > t0);
    }
}
