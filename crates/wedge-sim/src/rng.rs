//! Deterministic pseudo-random number generator for simulations.
//!
//! A self-contained SplitMix64: tiny, fast, stable across platforms and
//! library versions, which keeps every simulation run reproducible from
//! its seed alone. (The `rand` crate is used elsewhere for workload
//! generation where cross-version stability does not matter.)

/// SplitMix64 PRNG (public-domain algorithm by Sebastiano Vigna).
#[derive(Clone, Debug)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Multiply-shift rejection-free mapping (slight bias acceptable
        // for workload generation; bounds here are tiny vs 2^64).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli trial with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Derives an independent child generator (for per-actor streams).
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = SimRng::new(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10);
            assert!(v < 10);
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SimRng::new(9);
        for _ in 0..1000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_f64_roughly_uniform() {
        let mut rng = SimRng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = SimRng::new(3);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
