//! Event tracing: capture what happened in a simulation, for
//! debugging protocol issues and asserting on event sequences in
//! tests.
//!
//! Tracing is opt-in ([`Simulation::enable_trace`]) and records one
//! [`TraceEvent`] per handler execution, cheap enough to leave on in
//! tests while staying out of benchmark runs.

use crate::actor::ActorId;
use crate::time::SimTime;
use std::fmt;

/// What kind of handler ran.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A message delivery.
    Deliver,
    /// A timer firing.
    Timer,
    /// An actor's `on_start`.
    Start,
}

/// One executed event.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Virtual time of execution.
    pub at: SimTime,
    /// The actor that ran.
    pub actor: ActorId,
    /// Sender (deliveries only).
    pub from: Option<ActorId>,
    /// Handler kind.
    pub kind: TraceKind,
    /// Short label (message variant name, timer tag).
    pub label: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.from {
            Some(from) => {
                write!(f, "[{}] {} -> {} {:?} {}", self.at, from, self.actor, self.kind, self.label)
            }
            None => write!(f, "[{}] {} {:?} {}", self.at, self.actor, self.kind, self.label),
        }
    }
}

/// A bounded in-memory event log.
#[derive(Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a trace holding at most `capacity` events (older events
    /// are dropped and counted).
    pub fn new(capacity: usize) -> Self {
        Trace { events: Vec::new(), capacity: capacity.max(1), dropped: 0 }
    }

    /// Records an event.
    pub fn record(&mut self, event: TraceEvent) {
        if self.events.len() >= self.capacity {
            self.events.remove(0);
            self.dropped += 1;
        }
        self.events.push(event);
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events dropped to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events involving `actor` (as executor or sender).
    pub fn for_actor(&self, actor: ActorId) -> Vec<&TraceEvent> {
        self.events.iter().filter(|e| e.actor == actor || e.from == Some(actor)).collect()
    }

    /// Events whose label contains `needle`.
    pub fn matching(&self, needle: &str) -> Vec<&TraceEvent> {
        self.events.iter().filter(|e| e.label.contains(needle)).collect()
    }

    /// True iff an event matching `needle` occurred at or before `t`.
    pub fn happened_by(&self, needle: &str, t: SimTime) -> bool {
        self.events.iter().any(|e| e.label.contains(needle) && e.at <= t)
    }

    /// Renders the trace as text (for failure dumps).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!("… {} earlier events dropped …\n", self.dropped));
        }
        for e in &self.events {
            out.push_str(&format!("{e}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_ms: u64, actor: usize, label: &str) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_nanos(at_ms * 1_000_000),
            actor: ActorId::from_index(actor),
            from: None,
            kind: TraceKind::Deliver,
            label: label.into(),
        }
    }

    #[test]
    fn records_and_filters() {
        let mut t = Trace::new(10);
        t.record(ev(1, 0, "BatchAdd"));
        t.record(ev(2, 1, "BlockCertify"));
        t.record(ev(3, 0, "AddResponse"));
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.for_actor(ActorId::from_index(0)).len(), 2);
        assert_eq!(t.matching("Block").len(), 1);
        assert!(t.happened_by("BatchAdd", SimTime::from_nanos(1_000_000)));
        assert!(!t.happened_by("AddResponse", SimTime::from_nanos(1_000_000)));
    }

    #[test]
    fn capacity_bound_drops_oldest() {
        let mut t = Trace::new(2);
        t.record(ev(1, 0, "a"));
        t.record(ev(2, 0, "b"));
        t.record(ev(3, 0, "c"));
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.events()[0].label, "b");
    }

    #[test]
    fn dump_is_readable() {
        let mut t = Trace::new(1);
        t.record(ev(1, 0, "a"));
        t.record(ev(2, 3, "b"));
        let d = t.dump();
        assert!(d.contains("dropped"));
        assert!(d.contains("#3"));
    }
}
