//! The wide-area network model.
//!
//! The paper evaluates WedgeChain across five AWS datacenters —
//! California (C), Oregon (O), Virginia (V), Ireland (I), Mumbai (M) —
//! with the RTTs of Table I. This module reproduces that matrix, adds a
//! bandwidth model (transmission delay plus FIFO link queueing, which is
//! what makes Edge-baseline degrade with batch size in Fig 4), and a
//! small intra-region latency for client↔edge hops.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use std::collections::HashMap;
use std::fmt;

/// The five datacenter regions of the evaluation (§VI, Table I).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Region {
    /// California — the edge location in most experiments.
    California,
    /// Oregon.
    Oregon,
    /// Virginia — the cloud location in most experiments.
    Virginia,
    /// Ireland.
    Ireland,
    /// Mumbai — the farthest datacenter (238 ms RTT from California).
    Mumbai,
}

impl Region {
    /// All regions, in Table I column order.
    pub const ALL: [Region; 5] =
        [Region::California, Region::Oregon, Region::Virginia, Region::Ireland, Region::Mumbai];

    /// One-letter code used in the paper's tables.
    pub fn code(&self) -> char {
        match self {
            Region::California => 'C',
            Region::Oregon => 'O',
            Region::Virginia => 'V',
            Region::Ireland => 'I',
            Region::Mumbai => 'M',
        }
    }

    fn index(&self) -> usize {
        match self {
            Region::California => 0,
            Region::Oregon => 1,
            Region::Virginia => 2,
            Region::Ireland => 3,
            Region::Mumbai => 4,
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// Round-trip times in milliseconds between regions.
///
/// The California row is Table I verbatim (0/19/61/141/238). The paper
/// only reports that row (its experiments keep clients in California);
/// the remaining pairs are filled with representative AWS inter-region
/// RTTs so that arbitrary placements remain meaningful.
pub const RTT_MS: [[u64; 5]; 5] = [
    //           C    O    V    I    M
    /* C */ [0, 19, 61, 141, 238],
    /* O */ [19, 0, 68, 130, 220],
    /* V */ [61, 68, 0, 78, 185],
    /* I */ [141, 130, 78, 0, 110],
    /* M */ [238, 220, 185, 110, 0],
];

/// Network configuration knobs.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// RTT within a region (client ↔ edge in the same city), ms.
    /// Table I lists 0 for C↔C; the measured ~15 ms WedgeChain commit
    /// latency implies a local round trip plus processing, which this
    /// models.
    pub local_rtt_ms: f64,
    /// Bandwidth of inter-region (WAN) paths, bytes/second.
    pub wan_bandwidth_bps: f64,
    /// Bandwidth of intra-region (LAN/metro) paths, bytes/second.
    pub lan_bandwidth_bps: f64,
    /// Fixed per-message overhead added to the payload (headers, TLS).
    pub per_message_overhead_bytes: u64,
    /// Latency jitter as a fraction of the base one-way delay
    /// (0.0 = fully deterministic).
    pub jitter_frac: f64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            local_rtt_ms: 10.0,
            // 40 MB/s WAN: calibrated so a 200 KB block (batch of 2000
            // 100-byte ops) costs ~5 ms per WAN crossing, matching the
            // mild slope of Cloud-only and the steep one of
            // Edge-baseline (which crosses twice and queues) in Fig 4.
            wan_bandwidth_bps: 40.0e6,
            lan_bandwidth_bps: 1.0e9,
            per_message_overhead_bytes: 256,
            jitter_frac: 0.0,
        }
    }
}

/// Per-directed-link FIFO queue state for the bandwidth model.
#[derive(Clone, Debug, Default)]
struct LinkState {
    /// Virtual time at which the link finishes its last queued transfer.
    free_at: SimTime,
}

/// The network model: computes message delivery delays.
///
/// Delivery time = queueing (FIFO per directed region pair)
///               + transmission (bytes / bandwidth)
///               + propagation (RTT/2)  [+ optional jitter].
#[derive(Clone, Debug)]
pub struct NetworkModel {
    cfg: NetConfig,
    links: HashMap<(usize, usize), LinkState>,
    rng: SimRng,
}

impl NetworkModel {
    /// Creates a model with the given configuration.
    pub fn new(cfg: NetConfig, seed: u64) -> Self {
        NetworkModel { cfg, links: HashMap::new(), rng: SimRng::new(seed) }
    }

    /// The model's configuration.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// One-way propagation delay between two regions.
    pub fn propagation(&self, from: Region, to: Region) -> SimDuration {
        let rtt_ms = if from == to {
            self.cfg.local_rtt_ms
        } else {
            RTT_MS[from.index()][to.index()] as f64
        };
        SimDuration::from_millis_f64(rtt_ms / 2.0)
    }

    /// Round-trip time between two regions (as Table I reports it).
    pub fn rtt(&self, from: Region, to: Region) -> SimDuration {
        self.propagation(from, to) + self.propagation(to, from)
    }

    /// Transmission delay for a message of `bytes` on the path class.
    pub fn transmission(&self, from: Region, to: Region, bytes: u64) -> SimDuration {
        let total = bytes as f64 + self.cfg.per_message_overhead_bytes as f64;
        let bw = if from == to { self.cfg.lan_bandwidth_bps } else { self.cfg.wan_bandwidth_bps };
        SimDuration::from_secs_f64(total / bw)
    }

    /// Computes when a message sent at `now` arrives, advancing the
    /// link's FIFO queue. This is the mutating entry point used by the
    /// simulator for every send.
    pub fn delivery_at(&mut self, now: SimTime, from: Region, to: Region, bytes: u64) -> SimTime {
        let key = (from.index(), to.index());
        let tx = self.transmission(from, to, bytes);
        let mut prop = self.propagation(from, to);
        if self.cfg.jitter_frac > 0.0 {
            let j = 1.0 + self.cfg.jitter_frac * (2.0 * self.rng.gen_f64() - 1.0);
            prop = prop.mul_f64(j);
        }
        let link = self.links.entry(key).or_default();
        let start = if link.free_at > now { link.free_at } else { now };
        link.free_at = start + tx;
        link.free_at + prop
    }

    /// Resets all link queues (between benchmark iterations).
    pub fn reset_queues(&mut self) {
        self.links.clear();
    }
}

/// Prints Table I: the RTT matrix row the paper reports, plus the full
/// matrix used by the model.
pub fn format_table1() -> String {
    let mut out = String::new();
    out.push_str("      C     O     V     I     M\n");
    for (i, r) in Region::ALL.iter().enumerate() {
        out.push_str(&format!("{}  ", r.code()));
        for cell in &RTT_MS[i] {
            out.push_str(&format!("{cell:5} "));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_row_matches_paper() {
        // Table I: C → {C, O, V, I, M} = 0, 19, 61, 141, 238 ms.
        assert_eq!(RTT_MS[0], [0, 19, 61, 141, 238]);
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        for (i, row) in RTT_MS.iter().enumerate() {
            assert_eq!(row[i], 0);
            for (j, cell) in row.iter().enumerate() {
                assert_eq!(*cell, RTT_MS[j][i]);
            }
        }
    }

    #[test]
    fn propagation_is_half_rtt() {
        let net = NetworkModel::new(NetConfig::default(), 1);
        let p = net.propagation(Region::California, Region::Virginia);
        assert_eq!(p.as_millis_f64(), 30.5);
        assert_eq!(net.rtt(Region::California, Region::Virginia).as_millis_f64(), 61.0);
    }

    #[test]
    fn local_rtt_applies_within_region() {
        let net = NetworkModel::new(NetConfig::default(), 1);
        let rtt = net.rtt(Region::California, Region::California);
        assert_eq!(rtt.as_millis_f64(), 10.0);
    }

    #[test]
    fn transmission_scales_with_bytes() {
        let net = NetworkModel::new(NetConfig::default(), 1);
        let small = net.transmission(Region::California, Region::Virginia, 1_000);
        let large = net.transmission(Region::California, Region::Virginia, 1_000_000);
        assert!(large > small);
        // 1 MB at 40 MB/s ≈ 25 ms.
        assert!((large.as_millis_f64() - 25.0).abs() < 1.0);
    }

    #[test]
    fn fifo_link_queueing_delays_back_to_back_sends() {
        let mut net = NetworkModel::new(NetConfig::default(), 1);
        let t0 = SimTime::ZERO;
        let a = net.delivery_at(t0, Region::California, Region::Virginia, 1_000_000);
        let b = net.delivery_at(t0, Region::California, Region::Virginia, 1_000_000);
        // Second transfer queues behind the first: arrives ~25 ms later.
        assert!(b > a);
        assert!((b.since(a).as_millis_f64() - 25.0).abs() < 1.0);
    }

    #[test]
    fn reverse_direction_has_independent_queue() {
        let mut net = NetworkModel::new(NetConfig::default(), 1);
        let t0 = SimTime::ZERO;
        let _ = net.delivery_at(t0, Region::California, Region::Virginia, 10_000_000);
        let back = net.delivery_at(t0, Region::Virginia, Region::California, 1_000);
        // The reverse link is idle; only propagation + small tx.
        assert!(back.as_millis_f64() < 31.0);
    }

    #[test]
    fn reset_clears_queues() {
        let mut net = NetworkModel::new(NetConfig::default(), 1);
        let t0 = SimTime::ZERO;
        let _ = net.delivery_at(t0, Region::California, Region::Virginia, 10_000_000);
        net.reset_queues();
        let a = net.delivery_at(t0, Region::California, Region::Virginia, 1_000);
        assert!(a.as_millis_f64() < 31.0);
    }

    #[test]
    fn jitter_stays_bounded() {
        let cfg = NetConfig { jitter_frac: 0.1, ..NetConfig::default() };
        let mut net = NetworkModel::new(cfg, 42);
        for _ in 0..100 {
            net.reset_queues();
            let d = net
                .delivery_at(SimTime::ZERO, Region::California, Region::Virginia, 0)
                .as_millis_f64();
            assert!((27.0..=34.0).contains(&d), "delay {d} out of jitter bounds");
        }
    }

    #[test]
    fn table_formatting_contains_paper_row() {
        let t = format_table1();
        assert!(t.contains("0    19    61   141   238"));
    }
}
