//! Actors and the context handed to their handlers.
//!
//! Protocol nodes (clients, edge nodes, the cloud node) are *actors*:
//! deterministic state machines that react to messages and timers. The
//! simulator delivers events in virtual-time order; handlers interact
//! with the world only through [`Context`], which is what makes the
//! same state machines drivable by both the simulator and a real
//! threaded runtime.

use crate::net::Region;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use std::any::Any;
use std::fmt;

/// Identifies an actor within one simulation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActorId(pub(crate) usize);

impl ActorId {
    /// Raw index (stable for the lifetime of the simulation).
    pub fn index(&self) -> usize {
        self.0
    }

    /// Constructs an id from a raw index. Ids are handed out
    /// sequentially from 0 by `Simulation::add_actor`, so harnesses
    /// that add actors in a fixed order may pre-compute ids to break
    /// wiring cycles (cloud needs the edge's id and vice versa); the
    /// harness asserts the prediction when adding.
    pub fn from_index(index: usize) -> ActorId {
        ActorId(index)
    }
}

impl fmt::Debug for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "actor#{}", self.0)
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Identifies a pending timer (for cancellation).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TimerId(pub(crate) u64);

/// A message en route, as queued by a handler.
pub(crate) struct Outbound<M> {
    pub to: ActorId,
    pub msg: M,
    pub bytes: u64,
    /// Offset of the send within the handler's execution (CPU time
    /// consumed before the send was issued).
    pub at_offset: SimDuration,
}

pub(crate) struct TimerRequest {
    pub id: TimerId,
    pub delay: SimDuration,
    pub tag: u64,
}

/// Work queued on the actor's *background* CPU lane (a second core
/// dedicated to asynchronous duties like lazy certification dispatch
/// and merge application — work the paper explicitly keeps off the
/// request path).
pub(crate) enum BgOp<M> {
    /// Consume background CPU.
    Work(SimDuration),
    /// Consume `cost` of background CPU, then transmit.
    Send { to: ActorId, msg: M, bytes: u64, cost: SimDuration },
}

/// Handler-side view of the simulation.
///
/// All effects — sending, timers, consuming CPU — are buffered here and
/// applied by the driver when the handler returns, keeping handlers
/// pure with respect to the event queue.
pub struct Context<'a, M> {
    pub(crate) now: SimTime,
    pub(crate) self_id: ActorId,
    pub(crate) elapsed: SimDuration,
    pub(crate) outbox: Vec<Outbound<M>>,
    pub(crate) bg_ops: Vec<BgOp<M>>,
    pub(crate) timers: Vec<TimerRequest>,
    pub(crate) canceled: Vec<TimerId>,
    pub(crate) next_timer: &'a mut u64,
    pub(crate) rng: &'a mut SimRng,
}

impl<'a, M> Context<'a, M> {
    /// Virtual time at which the handler started executing.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Virtual time including CPU consumed so far in this handler.
    pub fn now_with_cpu(&self) -> SimTime {
        self.now + self.elapsed
    }

    /// The id of the actor being executed.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// Sends `msg` (`bytes` long on the wire) to `to`. The message
    /// leaves this node after any CPU consumed so far.
    pub fn send(&mut self, to: ActorId, msg: M, bytes: u64) {
        self.outbox.push(Outbound { to, msg, bytes, at_offset: self.elapsed });
    }

    /// Models `duration` of CPU work on this node. Subsequent sends and
    /// the node's availability for the next message are pushed back.
    pub fn use_cpu(&mut self, duration: SimDuration) {
        self.elapsed += duration;
    }

    /// Models `duration` of work on the node's *background* core. It
    /// does not delay this handler, its sends, or subsequent message
    /// handling — but the background lane is serial, so queued
    /// background work drains FIFO (this is what makes Phase II lag
    /// behind Phase I at large batch sizes, Fig 6).
    pub fn use_cpu_background(&mut self, duration: SimDuration) {
        self.bg_ops.push(BgOp::Work(duration));
    }

    /// Queues `msg` for transmission from the background lane after
    /// `cost` of background CPU (e.g. digest bookkeeping before a
    /// block-certify message leaves).
    pub fn send_background(&mut self, to: ActorId, msg: M, bytes: u64, cost: SimDuration) {
        self.bg_ops.push(BgOp::Send { to, msg, bytes, cost });
    }

    /// Schedules a timer to fire after `delay`, carrying `tag` back to
    /// [`Actor::on_timer`]. Returns an id usable with
    /// [`Context::cancel_timer`].
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        let id = TimerId(*self.next_timer);
        *self.next_timer += 1;
        self.timers.push(TimerRequest { id, delay, tag });
        id
    }

    /// Cancels a previously scheduled timer. Canceling an
    /// already-fired timer is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.canceled.push(id);
    }

    /// Deterministic per-simulation randomness.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }
}

/// Keeps exactly one simulator timer armed at an engine's earliest
/// deadline (`next_deadline_ns`).
///
/// Sans-IO engines own their time-driven behaviour as "earliest
/// deadline" state; a driver's whole job is to call the engine's
/// `Tick` command once `now` reaches that deadline. This helper is the
/// simulator side of that contract: after every engine interaction the
/// actor calls [`DeadlineTimer::resync`] with the engine's current
/// deadline, and in `on_timer` it calls [`DeadlineTimer::fired`] to
/// recognise its timer. The timer is re-armed only when the deadline
/// actually changed, so a steady cadence costs one timer per firing.
#[derive(Debug, Default)]
pub struct DeadlineTimer {
    armed: Option<(TimerId, u64)>,
}

impl DeadlineTimer {
    /// A timer with nothing armed.
    pub const fn new() -> Self {
        DeadlineTimer { armed: None }
    }

    /// Reconciles the armed simulator timer with the engine's earliest
    /// deadline (absolute ns). Cancels/re-arms only on change.
    pub fn resync<M>(&mut self, ctx: &mut Context<'_, M>, deadline_ns: Option<u64>) {
        if self.armed.map(|(_, d)| d) == deadline_ns {
            return;
        }
        if let Some((timer, _)) = self.armed.take() {
            ctx.cancel_timer(timer);
        }
        if let Some(d) = deadline_ns {
            let delay = SimDuration::from_nanos(d.saturating_sub(ctx.now().as_nanos()));
            let id = ctx.set_timer(delay, 0);
            self.armed = Some((id, d));
        }
    }

    /// Call from `on_timer`: returns `true` (and disarms) iff `id` is
    /// the deadline timer this helper armed.
    pub fn fired(&mut self, id: TimerId) -> bool {
        match self.armed {
            Some((t, _)) if t == id => {
                self.armed = None;
                true
            }
            _ => false,
        }
    }

    /// The whole driver-side `on_timer` protocol in one call: if `id`
    /// is this helper's timer and the engine's deadline has passed,
    /// returns `true` — the caller must issue its `Tick` command (and
    /// resync afterwards). Otherwise re-arms as needed and returns
    /// `false`.
    pub fn should_tick<M>(
        &mut self,
        ctx: &mut Context<'_, M>,
        id: TimerId,
        deadline_ns: Option<u64>,
    ) -> bool {
        if !self.fired(id) {
            return false;
        }
        if deadline_ns.is_some_and(|d| d <= ctx.now().as_nanos()) {
            return true;
        }
        // The deadline moved (or vanished) since this timer was armed.
        self.resync(ctx, deadline_ns);
        false
    }
}

/// A deterministic protocol state machine.
///
/// Implementations must also expose themselves as `Any` so test and
/// bench harnesses can inspect final state via
/// [`crate::sim::Simulation::actor`].
pub trait Actor<M>: 'static {
    /// Handles a message delivered from `from`.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: ActorId, msg: M);

    /// Handles a timer set by this actor. Default: ignore.
    fn on_timer(&mut self, _ctx: &mut Context<'_, M>, _timer: TimerId, _tag: u64) {}

    /// Called once when the simulation starts, before any messages.
    fn on_start(&mut self, _ctx: &mut Context<'_, M>) {}

    /// Upcast for state inspection.
    fn as_any(&self) -> &dyn Any;

    /// Upcast for state mutation.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Per-actor metadata tracked by the simulator.
#[derive(Clone, Debug)]
pub struct ActorMeta {
    /// Human-readable name for traces ("edge-0", "client-3", "cloud").
    pub name: String,
    /// Datacenter placement; drives network delays.
    pub region: Region,
    /// When this node's CPU becomes free (queueing of processing).
    pub(crate) cpu_free: SimTime,
    /// When this node's background core becomes free.
    pub(crate) bg_free: SimTime,
}
