//! # wedge-sim
//!
//! A deterministic discrete-event simulator standing in for the paper's
//! AWS testbed (DESIGN.md §2). It provides:
//!
//! - [`time`]: virtual nanosecond clock ([`SimTime`], [`SimDuration`]).
//! - [`net`]: the five-region network model with the paper's Table I
//!   RTT matrix, bandwidth/transmission delays, and per-link FIFO
//!   queueing.
//! - [`actor`]: the [`Actor`] trait protocol nodes implement, plus the
//!   effect-buffering [`Context`].
//! - [`sim`]: the event-loop driver ([`Simulation`]) with CPU-busy
//!   modeling, timers, and deterministic replay.
//! - [`rng`]: a stable SplitMix64 PRNG.
//!
//! The protocol crates (`wedge-core`, `wedge-baselines`) implement
//! their nodes as [`Actor`]s; the bench harness builds a [`Simulation`]
//! per experiment, places actors in regions, and measures virtual-time
//! latency/throughput exactly as the paper measures wall-clock.

#![forbid(unsafe_code)]

pub mod actor;
pub mod net;
pub mod rng;
pub mod sim;
pub mod time;
pub mod trace;

pub use actor::{Actor, ActorId, Context, DeadlineTimer, TimerId};
pub use net::{format_table1, NetConfig, NetworkModel, Region, RTT_MS};
pub use rng::SimRng;
pub use sim::Simulation;
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceEvent, TraceKind};
