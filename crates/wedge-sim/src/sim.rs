//! The discrete-event simulation driver.
//!
//! Events (message deliveries and timer firings) are processed in
//! `(virtual time, sequence)` order from a binary heap, so runs are
//! fully deterministic given the seed. Node CPU is modeled: an actor
//! whose handler consumed CPU is busy until `cpu_free`, and deliveries
//! that arrive earlier are deferred — this is what lets the harness
//! observe throughput collapse when a node (e.g. the cloud performing
//! synchronous certification for Edge-baseline) becomes the bottleneck.

use crate::actor::{Actor, ActorId, ActorMeta, BgOp, Context, TimerId};
use crate::net::{NetConfig, NetworkModel, Region};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceEvent, TraceKind};

/// Renders a short label for a traced message.
type TraceLabeler<M> = fn(&M) -> String;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

enum EventKind<M> {
    Deliver {
        from: ActorId,
        to: ActorId,
        msg: M,
    },
    /// A send leaving its node at this instant: the network link is
    /// reserved *now* (event time), so reservations always happen in
    /// nondecreasing time order and a future background transfer can
    /// never block an earlier foreground one.
    Dispatch {
        from: ActorId,
        to: ActorId,
        msg: M,
        bytes: u64,
    },
    Timer {
        actor: ActorId,
        id: TimerId,
        tag: u64,
    },
}

struct QueuedEvent<M> {
    at: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for QueuedEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for QueuedEvent<M> {}
impl<M> PartialOrd for QueuedEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for QueuedEvent<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic discrete-event simulation over message type `M`.
pub struct Simulation<M> {
    now: SimTime,
    queue: BinaryHeap<Reverse<QueuedEvent<M>>>,
    seq: u64,
    actors: Vec<Option<Box<dyn Actor<M>>>>,
    meta: Vec<ActorMeta>,
    net: NetworkModel,
    rng: SimRng,
    next_timer: u64,
    canceled_timers: HashSet<u64>,
    events_processed: u64,
    started: bool,
    trace: Option<(Trace, TraceLabeler<M>)>,
}

impl<M: 'static> Simulation<M> {
    /// Creates a simulation with the given network configuration and
    /// RNG seed.
    pub fn new(net_cfg: NetConfig, seed: u64) -> Self {
        let mut rng = SimRng::new(seed);
        let net_seed = rng.next_u64();
        Simulation {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            seq: 0,
            actors: Vec::new(),
            meta: Vec::new(),
            net: NetworkModel::new(net_cfg, net_seed),
            rng,
            next_timer: 0,
            canceled_timers: HashSet::new(),
            events_processed: 0,
            started: false,
            trace: None,
        }
    }

    /// Enables event tracing with a bounded buffer; `labeler` renders
    /// a short label for each message (e.g. its variant name).
    pub fn enable_trace(&mut self, capacity: usize, labeler: TraceLabeler<M>) {
        self.trace = Some((Trace::new(capacity), labeler));
    }

    /// The captured trace, if tracing is enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref().map(|(t, _)| t)
    }

    /// Registers an actor placed in `region`. Returns its id.
    pub fn add_actor(
        &mut self,
        name: impl Into<String>,
        region: Region,
        actor: Box<dyn Actor<M>>,
    ) -> ActorId {
        let id = ActorId(self.actors.len());
        self.actors.push(Some(actor));
        self.meta.push(ActorMeta {
            name: name.into(),
            region,
            cpu_free: SimTime::ZERO,
            bg_free: SimTime::ZERO,
        });
        id
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Immutable access to an actor's concrete state.
    ///
    /// # Panics
    /// Panics if the id is invalid or the type does not match.
    pub fn actor<T: 'static>(&self, id: ActorId) -> &T {
        self.actors[id.0]
            .as_ref()
            .expect("actor is currently executing")
            .as_any()
            .downcast_ref::<T>()
            .expect("actor type mismatch")
    }

    /// Mutable access to an actor's concrete state (for test setup).
    pub fn actor_mut<T: 'static>(&mut self, id: ActorId) -> &mut T {
        self.actors[id.0]
            .as_mut()
            .expect("actor is currently executing")
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("actor type mismatch")
    }

    /// Metadata (name, region) for an actor.
    pub fn meta(&self, id: ActorId) -> &ActorMeta {
        &self.meta[id.0]
    }

    /// The network model (e.g. to query RTTs in assertions).
    pub fn network(&self) -> &NetworkModel {
        &self.net
    }

    /// Injects a message from "outside" the simulation (e.g. the
    /// harness acting as an upstream source), delivered at `at`.
    pub fn inject_at(&mut self, at: SimTime, from: ActorId, to: ActorId, msg: M) {
        assert!(at >= self.now, "cannot inject into the past");
        let seq = self.bump_seq();
        self.queue.push(Reverse(QueuedEvent {
            at,
            seq,
            kind: EventKind::Deliver { from, to, msg },
        }));
    }

    /// Injects a message for immediate delivery at the current time.
    pub fn inject(&mut self, from: ActorId, to: ActorId, msg: M) {
        self.inject_at(self.now, from, to, msg);
    }

    fn bump_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Runs `on_start` for all actors (idempotent; called automatically
    /// by the run methods).
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.actors.len() {
            self.run_handler(ActorId(i), self.now, |actor, ctx| actor.on_start(ctx));
        }
    }

    /// Processes events until the queue is empty or `max_events` is hit.
    /// Returns the number of events processed in this call.
    pub fn run_until_idle(&mut self, max_events: u64) -> u64 {
        self.start();
        let mut n = 0;
        while n < max_events {
            if !self.step() {
                break;
            }
            n += 1;
        }
        n
    }

    /// Processes events with `at <= deadline`. Advances `now` to
    /// `deadline` if the queue drains first.
    pub fn run_until(&mut self, deadline: SimTime, max_events: u64) -> u64 {
        self.start();
        let mut n = 0;
        while n < max_events {
            match self.queue.peek() {
                Some(Reverse(ev)) if ev.at <= deadline => {
                    self.step();
                    n += 1;
                }
                _ => break,
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
        n
    }

    /// Processes a single event. Returns `false` if the queue is empty.
    pub fn step(&mut self) -> bool {
        self.start();
        loop {
            let Some(Reverse(ev)) = self.queue.pop() else {
                return false;
            };
            debug_assert!(ev.at >= self.now, "time went backwards");
            match ev.kind {
                EventKind::Timer { actor, id, tag } => {
                    if self.canceled_timers.remove(&id.0) {
                        // Canceled: consumed an event (no handler ran);
                        // return so deadline-bounded loops re-check.
                        return true;
                    }
                    self.now = ev.at;
                    self.events_processed += 1;
                    if let Some((trace, _)) = &mut self.trace {
                        trace.record(TraceEvent {
                            at: ev.at,
                            actor,
                            from: None,
                            kind: TraceKind::Timer,
                            label: format!("timer:{tag}"),
                        });
                    }
                    self.run_handler(actor, ev.at, |a, ctx| a.on_timer(ctx, id, tag));
                    return true;
                }
                EventKind::Dispatch { from, to, msg, bytes } => {
                    self.now = ev.at;
                    let from_region = self.meta[from.0].region;
                    let to_region = self.meta[to.0].region;
                    let arrive = self.net.delivery_at(ev.at, from_region, to_region, bytes);
                    let seq = self.bump_seq();
                    self.queue.push(Reverse(QueuedEvent {
                        at: arrive,
                        seq,
                        kind: EventKind::Deliver { from, to, msg },
                    }));
                    return true; // internal bookkeeping; no handler ran
                }
                EventKind::Deliver { from, to, msg } => {
                    // Defer if the destination CPU is busy.
                    let cpu_free = self.meta[to.0].cpu_free;
                    if cpu_free > ev.at {
                        let seq = self.bump_seq();
                        self.queue.push(Reverse(QueuedEvent {
                            at: cpu_free,
                            seq,
                            kind: EventKind::Deliver { from, to, msg },
                        }));
                        continue;
                    }
                    self.now = ev.at;
                    self.events_processed += 1;
                    if let Some((trace, labeler)) = &mut self.trace {
                        trace.record(TraceEvent {
                            at: ev.at,
                            actor: to,
                            from: Some(from),
                            kind: TraceKind::Deliver,
                            label: labeler(&msg),
                        });
                    }
                    self.run_handler(to, ev.at, |a, ctx| a.on_message(ctx, from, msg));
                    return true;
                }
            }
        }
    }

    fn run_handler<F>(&mut self, id: ActorId, at: SimTime, f: F)
    where
        F: FnOnce(&mut dyn Actor<M>, &mut Context<'_, M>),
    {
        let mut actor = self.actors[id.0].take().expect("reentrant actor execution");
        let mut ctx = Context {
            now: at,
            self_id: id,
            elapsed: SimDuration::ZERO,
            outbox: Vec::new(),
            bg_ops: Vec::new(),
            timers: Vec::new(),
            canceled: Vec::new(),
            next_timer: &mut self.next_timer,
            rng: &mut self.rng,
        };
        f(actor.as_mut(), &mut ctx);
        let Context { elapsed, outbox, bg_ops, timers, canceled, .. } = ctx;
        self.actors[id.0] = Some(actor);

        // The node was busy for `elapsed` of CPU.
        if elapsed > SimDuration::ZERO {
            self.meta[id.0].cpu_free = at + elapsed;
        }
        for t in canceled {
            self.canceled_timers.insert(t.0);
        }
        for t in timers {
            let fire_at = at + elapsed + t.delay;
            let seq = self.bump_seq();
            self.queue.push(Reverse(QueuedEvent {
                at: fire_at,
                seq,
                kind: EventKind::Timer { actor: id, id: t.id, tag: t.tag },
            }));
        }
        for out in outbox {
            let send_time = at + out.at_offset;
            let seq = self.bump_seq();
            self.queue.push(Reverse(QueuedEvent {
                at: send_time,
                seq,
                kind: EventKind::Dispatch { from: id, to: out.to, msg: out.msg, bytes: out.bytes },
            }));
        }
        // Background lane: serial FIFO, starts no earlier than when the
        // handler observed its work (end of foreground processing).
        if !bg_ops.is_empty() {
            let mut cursor = self.meta[id.0].bg_free.max(at + elapsed);
            for op in bg_ops {
                match op {
                    BgOp::Work(d) => cursor += d,
                    BgOp::Send { to, msg, bytes, cost } => {
                        cursor += cost;
                        let seq = self.bump_seq();
                        self.queue.push(Reverse(QueuedEvent {
                            at: cursor,
                            seq,
                            kind: EventKind::Dispatch { from: id, to, msg, bytes },
                        }));
                    }
                }
            }
            self.meta[id.0].bg_free = cursor;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    #[derive(Debug, Clone, PartialEq)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    /// Replies Pong(n+1) to Ping(n), consuming 1 ms CPU per message.
    struct Ponger {
        received: Vec<u32>,
        cpu_ms: u64,
    }

    impl Actor<Msg> for Ponger {
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: ActorId, msg: Msg) {
            if let Msg::Ping(n) = msg {
                self.received.push(n);
                ctx.use_cpu(SimDuration::from_millis(self.cpu_ms));
                ctx.send(from, Msg::Pong(n + 1), 64);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Sends `count` pings on start and records pong arrival times.
    struct Pinger {
        target: Option<ActorId>,
        count: u32,
        pongs: Vec<(u32, SimTime)>,
    }

    impl Actor<Msg> for Pinger {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            if let Some(t) = self.target {
                for i in 0..self.count {
                    ctx.send(t, Msg::Ping(i), 64);
                }
            }
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _from: ActorId, msg: Msg) {
            if let Msg::Pong(n) = msg {
                self.pongs.push((n, ctx.now()));
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn two_node_sim(cpu_ms: u64, pings: u32) -> (Simulation<Msg>, ActorId, ActorId) {
        let mut sim = Simulation::new(NetConfig::default(), 7);
        let ponger = sim.add_actor(
            "ponger",
            Region::Virginia,
            Box::new(Ponger { received: vec![], cpu_ms }),
        );
        let pinger = sim.add_actor(
            "pinger",
            Region::California,
            Box::new(Pinger { target: Some(ponger), count: pings, pongs: vec![] }),
        );
        (sim, pinger, ponger)
    }

    #[test]
    fn ping_pong_latency_matches_rtt() {
        let (mut sim, pinger, _) = two_node_sim(0, 1);
        sim.run_until_idle(1000);
        let p = sim.actor::<Pinger>(pinger);
        assert_eq!(p.pongs.len(), 1);
        // One-way C→V = 30.5 ms, round trip = 61 ms (+ negligible tx).
        let t = p.pongs[0].1.as_millis_f64();
        assert!((61.0..62.0).contains(&t), "round trip took {t} ms");
    }

    #[test]
    fn cpu_busy_serializes_handling() {
        // 5 pings, 10 ms CPU each: the ponger serializes them, so the
        // last pong returns ~40 ms after the first.
        let (mut sim, pinger, ponger) = two_node_sim(10, 5);
        sim.run_until_idle(1000);
        let p = sim.actor::<Pinger>(pinger);
        assert_eq!(p.pongs.len(), 5);
        let first = p.pongs.iter().map(|(_, t)| *t).min().unwrap();
        let last = p.pongs.iter().map(|(_, t)| *t).max().unwrap();
        let spread = last.since(first).as_millis_f64();
        assert!((39.0..43.0).contains(&spread), "spread was {spread} ms");
        assert_eq!(sim.actor::<Ponger>(ponger).received.len(), 5);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let (mut sim, pinger, _) = two_node_sim(3, 10);
            sim.run_until_idle(10_000);
            sim.actor::<Pinger>(pinger).pongs.clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn run_until_respects_deadline() {
        let (mut sim, pinger, _) = two_node_sim(0, 1);
        // Deadline before the pong arrives: no pongs yet.
        sim.run_until(SimTime::from_nanos(40_000_000), 1000);
        assert!(sim.actor::<Pinger>(pinger).pongs.is_empty());
        assert_eq!(sim.now(), SimTime::from_nanos(40_000_000));
        sim.run_until_idle(1000);
        assert_eq!(sim.actor::<Pinger>(pinger).pongs.len(), 1);
    }

    struct TimerActor {
        fired: Vec<(u64, SimTime)>,
        cancel_second: bool,
    }

    impl Actor<Msg> for TimerActor {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            ctx.set_timer(SimDuration::from_millis(5), 1);
            let t2 = ctx.set_timer(SimDuration::from_millis(10), 2);
            ctx.set_timer(SimDuration::from_millis(15), 3);
            if self.cancel_second {
                ctx.cancel_timer(t2);
            }
        }
        fn on_message(&mut self, _: &mut Context<'_, Msg>, _: ActorId, _: Msg) {}
        fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _id: TimerId, tag: u64) {
            self.fired.push((tag, ctx.now()));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn timers_fire_in_order() {
        let mut sim: Simulation<Msg> = Simulation::new(NetConfig::default(), 1);
        let a = sim.add_actor(
            "t",
            Region::California,
            Box::new(TimerActor { fired: vec![], cancel_second: false }),
        );
        sim.run_until_idle(100);
        let fired = &sim.actor::<TimerActor>(a).fired;
        assert_eq!(fired.iter().map(|(t, _)| *t).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(fired[0].1.as_millis_f64(), 5.0);
    }

    #[test]
    fn canceled_timer_does_not_fire() {
        let mut sim: Simulation<Msg> = Simulation::new(NetConfig::default(), 1);
        let a = sim.add_actor(
            "t",
            Region::California,
            Box::new(TimerActor { fired: vec![], cancel_second: true }),
        );
        sim.run_until_idle(100);
        let fired = &sim.actor::<TimerActor>(a).fired;
        assert_eq!(fired.iter().map(|(t, _)| *t).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn injection_delivers() {
        let mut sim = Simulation::new(NetConfig::default(), 1);
        let ponger =
            sim.add_actor("p", Region::Virginia, Box::new(Ponger { received: vec![], cpu_ms: 0 }));
        let pinger = sim.add_actor(
            "i",
            Region::California,
            Box::new(Pinger { target: None, count: 0, pongs: vec![] }),
        );
        sim.start();
        sim.inject(pinger, ponger, Msg::Ping(99));
        sim.run_until_idle(100);
        assert_eq!(sim.actor::<Ponger>(ponger).received, vec![99]);
        assert_eq!(sim.actor::<Pinger>(pinger).pongs.len(), 1);
    }
}

#[cfg(test)]
mod bg_lane_tests {
    use super::*;
    use crate::actor::{Actor, ActorId, Context};
    use std::any::Any;

    #[derive(Debug, Clone, PartialEq)]
    enum M {
        Go(u32),
        Done(u32),
    }

    /// Replies on the foreground immediately and echoes on the
    /// background lane after 10 ms of background work per message.
    struct BgWorker;

    impl Actor<M> for BgWorker {
        fn on_message(&mut self, ctx: &mut Context<'_, M>, from: ActorId, msg: M) {
            if let M::Go(n) = msg {
                ctx.send(from, M::Done(n), 16); // foreground: instant
                ctx.send_background(from, M::Done(n + 100), 16, SimDuration::from_millis(10));
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    struct Collector {
        events: Vec<(u32, SimTime)>,
    }

    impl Actor<M> for Collector {
        fn on_message(&mut self, ctx: &mut Context<'_, M>, _from: ActorId, msg: M) {
            if let M::Done(n) = msg {
                self.events.push((n, ctx.now()));
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn background_work_never_delays_foreground() {
        let mut sim: Simulation<M> = Simulation::new(NetConfig::default(), 1);
        let worker = sim.add_actor("worker", Region::California, Box::new(BgWorker));
        let coll =
            sim.add_actor("collector", Region::California, Box::new(Collector { events: vec![] }));
        sim.start();
        // Three back-to-back requests.
        for n in 0..3 {
            sim.inject(coll, worker, M::Go(n));
        }
        sim.run_until_idle(1000);
        let ev = &sim.actor::<Collector>(coll).events;
        // Foreground replies (n < 100) all arrive within one local hop,
        // unaffected by the 30 ms of queued background work.
        let fg: Vec<_> = ev.iter().filter(|(n, _)| *n < 100).collect();
        assert_eq!(fg.len(), 3);
        for (_, t) in &fg {
            assert!(t.as_millis_f64() < 6.0, "foreground delayed to {t}");
        }
        // Background replies drain serially: ~10/20/30 ms + hop.
        let bg: Vec<_> = ev.iter().filter(|(n, _)| *n >= 100).collect();
        assert_eq!(bg.len(), 3);
        let times: Vec<f64> = bg.iter().map(|(_, t)| t.as_millis_f64()).collect();
        assert!((14.0..17.0).contains(&times[0]), "first bg at {}", times[0]);
        assert!((24.0..27.0).contains(&times[1]), "second bg at {}", times[1]);
        assert!((34.0..37.0).contains(&times[2]), "third bg at {}", times[2]);
    }

    #[test]
    fn use_cpu_background_accumulates_into_lane() {
        struct Burner;
        impl Actor<M> for Burner {
            fn on_message(&mut self, ctx: &mut Context<'_, M>, from: ActorId, msg: M) {
                if let M::Go(n) = msg {
                    ctx.use_cpu_background(SimDuration::from_millis(20));
                    ctx.send_background(from, M::Done(n), 16, SimDuration::ZERO);
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim: Simulation<M> = Simulation::new(NetConfig::default(), 1);
        let burner = sim.add_actor("burner", Region::California, Box::new(Burner));
        let coll =
            sim.add_actor("collector", Region::California, Box::new(Collector { events: vec![] }));
        sim.start();
        sim.inject(coll, burner, M::Go(0));
        sim.inject(coll, burner, M::Go(1));
        sim.run_until_idle(1000);
        let ev = &sim.actor::<Collector>(coll).events;
        assert_eq!(ev.len(), 2);
        // Second reply waits for the first message's 20 ms of
        // background work plus its own: ~40 ms + hop.
        assert!(ev[1].1.as_millis_f64() > 40.0, "bg lane not serialized: {}", ev[1].1);
    }
}
