//! Virtual time for the discrete-event simulator.
//!
//! The paper's evaluation runs on real AWS datacenters where round-trip
//! times span 19–238 ms (Table I). The reproduction replaces wall-clock
//! time with a deterministic virtual clock in nanoseconds, so a 200 s
//! experiment (Fig 6) replays in milliseconds of host time and every
//! run is bit-identical.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since the epoch.
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Milliseconds since the epoch, as a float (for reporting).
    pub fn as_millis_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds since the epoch, as a float (for reporting).
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`, saturating at zero.
    pub fn since(&self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Constructs from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Constructs from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Constructs from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Constructs from fractional milliseconds.
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms.max(0.0) * 1e6).round() as u64)
    }

    /// Constructs from fractional seconds.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Milliseconds as a float.
    pub fn as_millis_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Scales the duration by a factor (used by the bandwidth model).
    pub fn mul_f64(&self, factor: f64) -> Self {
        SimDuration((self.0 as f64 * factor.max(0.0)).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!(t.as_nanos(), 5_000_000);
        let t2 = t + SimDuration::from_micros(500);
        assert_eq!((t2 - t).as_millis_f64(), 0.5);
        assert_eq!(t.since(t2), SimDuration::ZERO); // saturates
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(SimDuration::from_millis_f64(1.5).as_nanos(), 1_500_000);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_millis_f64(), 250.0);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_nanos(5) < SimTime::from_nanos(6));
        assert!(SimDuration::from_millis(1) > SimDuration::from_micros(999));
    }

    #[test]
    fn mul_f64_scales() {
        assert_eq!(SimDuration::from_millis(10).mul_f64(0.5), SimDuration::from_millis(5));
        assert_eq!(SimDuration::from_millis(10).mul_f64(-1.0), SimDuration::ZERO);
    }
}
