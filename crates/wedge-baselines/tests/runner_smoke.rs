//! Cross-system sanity: the paper's headline ordering must hold.

use wedge_baselines::{run_scenario, SystemKind};
use wedge_core::config::SystemConfig;
use wedge_workload::{Mix, Scenario};

fn small_write_scenario(batch: usize) -> Scenario {
    Scenario { batch_size: batch, batches_per_client: 15, ..Scenario::paper_default() }
}

#[test]
fn write_latency_ordering_matches_fig4a() {
    let s = small_write_scenario(100);
    let wc = run_scenario(SystemKind::WedgeChain, SystemConfig::default(), &s);
    let co = run_scenario(SystemKind::CloudOnly, SystemConfig::default(), &s);
    let eb = run_scenario(SystemKind::EdgeBaseline, SystemConfig::default(), &s);
    let (wc_l, co_l, eb_l) = (wc.agg.p1_latency_ms, co.agg.p1_latency_ms, eb.agg.p1_latency_ms);
    // Fig 4a ordering: WedgeChain < Cloud-only < Edge-baseline.
    assert!(wc_l < co_l, "WedgeChain {wc_l} !< Cloud-only {co_l}");
    assert!(co_l < eb_l, "Cloud-only {co_l} !< Edge-baseline {eb_l}");
    // Magnitudes near the paper's: ~15 ms / ~78 ms / ~109 ms.
    assert!((10.0..30.0).contains(&wc_l), "WedgeChain latency {wc_l}");
    assert!((60.0..100.0).contains(&co_l), "Cloud-only latency {co_l}");
    assert!((90.0..150.0).contains(&eb_l), "Edge-baseline latency {eb_l}");
}

#[test]
fn edge_baseline_degrades_with_batch_size() {
    let small =
        run_scenario(SystemKind::EdgeBaseline, SystemConfig::default(), &small_write_scenario(100));
    let large = run_scenario(
        SystemKind::EdgeBaseline,
        SystemConfig::default(),
        &small_write_scenario(2000),
    );
    // Fig 4a: Edge-baseline roughly doubles (109 → 213 ms).
    let ratio = large.agg.p1_latency_ms / small.agg.p1_latency_ms;
    assert!(ratio > 1.5, "Edge-baseline only degraded {ratio}x");
    // WedgeChain stays nearly flat (15 → 20 ms).
    let wc_small =
        run_scenario(SystemKind::WedgeChain, SystemConfig::default(), &small_write_scenario(100));
    let wc_large =
        run_scenario(SystemKind::WedgeChain, SystemConfig::default(), &small_write_scenario(2000));
    let wc_ratio = wc_large.agg.p1_latency_ms / wc_small.agg.p1_latency_ms;
    assert!(wc_ratio < 1.6, "WedgeChain degraded {wc_ratio}x");
}

#[test]
fn read_workload_ordering_matches_fig5c() {
    let s = Scenario {
        reads_per_client: 100,
        key_space: 2_000,
        ..Scenario::paper_default().with_mix(Mix::AllRead)
    };
    let wc = run_scenario(SystemKind::WedgeChain, SystemConfig::default(), &s);
    let co = run_scenario(SystemKind::CloudOnly, SystemConfig::default(), &s);
    let eb = run_scenario(SystemKind::EdgeBaseline, SystemConfig::default(), &s);
    // Fig 5c: WedgeChain ≈ Edge-baseline ≫ Cloud-only (reads pay the
    // WAN in Cloud-only).
    assert!(wc.agg.read_latency_ms < co.agg.read_latency_ms / 2.0);
    assert!(eb.agg.read_latency_ms < co.agg.read_latency_ms / 2.0);
    let wc_eb_ratio = wc.agg.read_latency_ms / eb.agg.read_latency_ms;
    assert!((0.5..2.0).contains(&wc_eb_ratio), "WC/EB read ratio {wc_eb_ratio}");
    // Every proof verified.
    assert_eq!(wc.agg.total_ops, 100);
}

#[test]
fn mixed_workload_ordering_matches_fig5b() {
    let s = Scenario {
        batches_per_client: 4,
        key_space: 2_000,
        ..Scenario::paper_default().with_mix(Mix::Mixed5050)
    };
    let wc = run_scenario(SystemKind::WedgeChain, SystemConfig::default(), &s);
    let co = run_scenario(SystemKind::CloudOnly, SystemConfig::default(), &s);
    let eb = run_scenario(SystemKind::EdgeBaseline, SystemConfig::default(), &s);
    // Fig 5b: WedgeChain > Edge-baseline > Cloud-only on throughput.
    assert!(
        wc.agg.throughput_kops > eb.agg.throughput_kops,
        "WC {} !> EB {}",
        wc.agg.throughput_kops,
        eb.agg.throughput_kops
    );
    assert!(
        eb.agg.throughput_kops > co.agg.throughput_kops,
        "EB {} !> CO {}",
        eb.agg.throughput_kops,
        co.agg.throughput_kops
    );
}
