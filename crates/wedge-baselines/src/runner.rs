//! Unified experiment runner: one entry point that builds any of the
//! three systems for a [`Scenario`] and returns comparable metrics.
//!
//! The bench targets call [`run_scenario`] once per (system, point)
//! pair and print the paper-style rows.

use crate::cloud_only::{CloudOnlyClient, CloudOnlyCloud};
use crate::edge_baseline::{EbClient, EbCloud, EbEdge};
use crate::msg::BMsg;
use wedge_core::client::ClientPlan;
use wedge_core::config::SystemConfig;
use wedge_core::fault::FaultPlan;
use wedge_core::harness::{Aggregate, SystemHarness};
use wedge_core::metrics::{ClientMetrics, Timeline};
use wedge_crypto::{Identity, KeyRegistry};
use wedge_lsmerkle::{CloudIndex, LsMerkle};
use wedge_sim::{ActorId, Simulation};
use wedge_workload::{Mix, Scenario};

/// The three systems of the evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SystemKind {
    /// The paper's system (lazy certification).
    WedgeChain,
    /// All requests at the cloud.
    CloudOnly,
    /// Synchronous cloud certification, edge serves reads.
    EdgeBaseline,
}

impl SystemKind {
    /// All three, in the paper's plotting order.
    pub const ALL: [SystemKind; 3] =
        [SystemKind::WedgeChain, SystemKind::CloudOnly, SystemKind::EdgeBaseline];

    /// Display name as used in the figures.
    pub fn name(&self) -> &'static str {
        match self {
            SystemKind::WedgeChain => "WedgeChain",
            SystemKind::CloudOnly => "Cloud-only",
            SystemKind::EdgeBaseline => "Edge-baseline",
        }
    }
}

/// Result of one experiment point.
#[derive(Clone, Debug, Default)]
pub struct RunOutput {
    /// Aggregate latency/throughput.
    pub agg: Aggregate,
    /// P1 commit timeline of client 0 (Fig 6).
    pub p1_timeline: Timeline,
    /// P2 commit timeline of client 0 (Fig 6).
    pub p2_timeline: Timeline,
}

/// Builds a [`ClientPlan`] from a scenario.
pub fn plan_from_scenario(s: &Scenario) -> ClientPlan {
    ClientPlan {
        write_batches: s.batches_per_client,
        reads: s.reads_per_client,
        batch_size: s.batch_size,
        value_size: s.value_size,
        key_dist: s.dist.clone(),
        key_space: s.key_space,
        read_pipeline: s.read_pipeline,
        interleave: matches!(s.mix, Mix::Mixed5050),
        kv: true,
    }
}

/// Runs `scenario` on `kind` under `cfg` and returns the metrics.
pub fn run_scenario(kind: SystemKind, mut cfg: SystemConfig, scenario: &Scenario) -> RunOutput {
    cfg.num_clients = scenario.clients;
    cfg.batch_size = scenario.batch_size;
    cfg.value_size = scenario.value_size;
    cfg.key_space = scenario.key_space;
    let plan = plan_from_scenario(scenario);
    match kind {
        SystemKind::WedgeChain => run_wedgechain(cfg, plan, scenario),
        SystemKind::CloudOnly => run_cloud_only(cfg, plan, scenario),
        SystemKind::EdgeBaseline => run_edge_baseline(cfg, plan, scenario),
    }
}

fn run_wedgechain(cfg: SystemConfig, plan: ClientPlan, scenario: &Scenario) -> RunOutput {
    let mut h = SystemHarness::wedgechain_with(cfg, plan, FaultPlan::honest());
    if scenario.reads_per_client > 0 {
        // Reads need data: preload the key space (capped for memory).
        h.preload(scenario.key_space.min(20_000));
    }
    h.run(None);
    let m0 = h.client_metrics(0).clone();
    RunOutput { agg: h.aggregate(), p1_timeline: m0.p1_timeline, p2_timeline: m0.p2_timeline }
}

fn aggregate_from(metrics: Vec<ClientMetrics>) -> Aggregate {
    let mut agg = Aggregate::default();
    let (mut p1s, mut p1n, mut p2s, mut p2n, mut rds, mut rdn) =
        (0.0, 0usize, 0.0, 0usize, 0.0, 0usize);
    let mut makespan = 0.0f64;
    for m in &metrics {
        p1s += m.p1_latency.mean() * m.p1_latency.count() as f64;
        p1n += m.p1_latency.count();
        p2s += m.p2_latency.mean() * m.p2_latency.count() as f64;
        p2n += m.p2_latency.count();
        rds += m.read_latency.mean() * m.read_latency.count() as f64;
        rdn += m.read_latency.count();
        agg.total_ops += m.total_ops();
        if let Some(t) = m.finished_at {
            makespan = makespan.max(t.as_secs_f64());
        }
    }
    agg.p1_latency_ms = if p1n > 0 { p1s / p1n as f64 } else { 0.0 };
    agg.p2_latency_ms = if p2n > 0 { p2s / p2n as f64 } else { 0.0 };
    agg.read_latency_ms = if rdn > 0 { rds / rdn as f64 } else { 0.0 };
    agg.makespan_secs = makespan;
    agg.throughput_kops =
        if makespan > 0.0 { agg.total_ops as f64 / makespan / 1_000.0 } else { 0.0 };
    agg
}

fn run_cloud_only(cfg: SystemConfig, plan: ClientPlan, scenario: &Scenario) -> RunOutput {
    let mut sim: Simulation<BMsg> = Simulation::new(cfg.net.clone(), cfg.seed);
    let cloud_node = CloudOnlyCloud::new(cfg.cost.clone());
    let cloud = sim.add_actor("cloud", cfg.cloud_region, Box::new(cloud_node));
    let mut clients = Vec::new();
    for i in 0..cfg.num_clients {
        let node = CloudOnlyClient::new(cloud, plan.clone());
        clients.push(sim.add_actor(format!("client-{i}"), cfg.client_region, Box::new(node)));
    }
    if scenario.reads_per_client > 0 {
        // Preload the trusted store directly.
        let store = &mut sim.actor_mut::<CloudOnlyCloud>(cloud).store;
        for k in 0..scenario.key_space.min(20_000) {
            store.insert(k, vec![0xEE; cfg.value_size]);
        }
    }
    sim.start();
    for &c in &clients {
        sim.inject(cloud, c, BMsg::Start);
    }
    sim.run_until_idle(u64::MAX / 2);
    let metrics: Vec<ClientMetrics> =
        clients.iter().map(|&c| sim.actor::<CloudOnlyClient>(c).metrics.clone()).collect();
    let m0 = metrics[0].clone();
    RunOutput {
        agg: aggregate_from(metrics),
        p1_timeline: m0.p1_timeline,
        p2_timeline: m0.p2_timeline,
    }
}

fn run_edge_baseline(cfg: SystemConfig, plan: ClientPlan, scenario: &Scenario) -> RunOutput {
    let mut sim: Simulation<BMsg> = Simulation::new(cfg.net.clone(), cfg.seed);
    let cloud_ident = Identity::derive("cloud", 1);
    let edge_ident = Identity::derive("edge", 100);
    let mut registry = KeyRegistry::new();
    registry.register(cloud_ident.id, cloud_ident.public()).unwrap();
    registry.register(edge_ident.id, edge_ident.public()).unwrap();

    // Pre-computed ids: cloud=0, edge=1, clients=2…
    let cloud_id = ActorId::from_index(0);
    let edge_id = ActorId::from_index(1);
    let cloud_node = EbCloud::new(
        cloud_ident.clone(),
        edge_id,
        edge_ident.id,
        cfg.cost.clone(),
        cfg.lsm.clone(),
    );
    let cloud = sim.add_actor("cloud", cfg.cloud_region, Box::new(cloud_node));
    assert_eq!(cloud, cloud_id);

    // The edge replica starts from the same (deterministic) init state.
    let mut replica_index = CloudIndex::new(cfg.lsm.clone());
    let init = replica_index.init_edge(&cloud_ident, edge_ident.id, 0);
    let replica = LsMerkle::new(edge_ident.id, cfg.lsm.clone(), init);
    let edge_node = EbEdge::new(cloud, cfg.cost.clone(), replica);
    let edge = sim.add_actor("edge", cfg.edge_region, Box::new(edge_node));
    assert_eq!(edge, edge_id);

    if scenario.reads_per_client > 0 {
        // Preload both the cloud's authoritative tree and the edge
        // replica, bypassing the network (read-benchmark setup).
        let n = scenario.key_space.min(20_000);
        let batch = cfg.batch_size.max(1) as u64;
        let mut key = 0u64;
        let mut seq = u64::MAX / 2;
        while key < n {
            let entries: Vec<wedge_log::Entry> = (0..batch.min(n - key))
                .map(|_| {
                    let op = wedge_lsmerkle::KvOp::put(key, vec![0xEE; cfg.value_size]);
                    let e = wedge_log::Entry {
                        client: wedge_crypto::IdentityId(1000),
                        sequence: seq,
                        payload: op.encode(),
                        signature: wedge_crypto::Signature { e: 0, s: 0 },
                    };
                    seq += 1;
                    key += 1;
                    e
                })
                .collect();
            let (block, proof, merges) = sim.actor_mut::<EbCloud>(cloud).preload_block(entries, 0);
            let replica = sim.actor_mut::<EbEdge>(edge);
            replica.log.append(block.clone());
            replica.log.attach_proof(proof.clone());
            replica.tree.apply_block_with_digest(block, proof.digest);
            replica.tree.attach_block_proof(proof);
            for (rq, rs) in merges {
                replica.tree.apply_merge_result(&rq, rs).expect("replica preload merge");
            }
        }
    }
    let mut clients = Vec::new();
    for i in 0..cfg.num_clients {
        let ident = Identity::derive("client", 1000 + i as u64);
        registry.register(ident.id, ident.public()).unwrap();
        let node = EbClient::new(
            ident,
            cloud,
            edge,
            edge_ident.id,
            cloud_ident.id,
            registry.clone(),
            cfg.cost.clone(),
            plan.clone(),
        );
        clients.push(sim.add_actor(format!("client-{i}"), cfg.client_region, Box::new(node)));
    }
    sim.start();
    for &c in &clients {
        sim.inject(cloud, c, BMsg::Start);
    }
    sim.run_until_idle(u64::MAX / 2);
    let metrics: Vec<ClientMetrics> =
        clients.iter().map(|&c| sim.actor::<EbClient>(c).metrics.clone()).collect();
    let m0 = metrics[0].clone();
    RunOutput {
        agg: aggregate_from(metrics),
        p1_timeline: m0.p1_timeline,
        p2_timeline: m0.p2_timeline,
    }
}
