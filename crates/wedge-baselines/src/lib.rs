//! # wedge-baselines
//!
//! The two comparison systems of the evaluation (§II-C, §VI):
//!
//! - [`cloud_only`]: every request is processed by the trusted cloud.
//!   Results need no verification, but each operation pays the
//!   wide-area round trip.
//! - [`edge_baseline`]: writes are certified at the cloud *before*
//!   the edge can serve them — the "mLSM with no changes" deployment
//!   the paper contrasts lazy certification against.
//! - [`runner`]: a unified [`runner::run_scenario`] entry point so the
//!   bench harness can sweep all three systems uniformly.

#![forbid(unsafe_code)]

pub mod cloud_only;
pub mod edge_baseline;
pub mod msg;
pub mod runner;

pub use cloud_only::{CloudOnlyClient, CloudOnlyCloud};
pub use edge_baseline::{EbClient, EbCloud, EbEdge};
pub use msg::BMsg;
pub use runner::{plan_from_scenario, run_scenario, RunOutput, SystemKind};
