//! The Cloud-only baseline: every request is served by the trusted
//! cloud node (§VI: "processes all requests in the cloud node").
//!
//! Clients fully trust results (no verification), but pay the
//! wide-area round trip on *every* operation — which is exactly what
//! Figs 4, 5 and 7 show it losing to WedgeChain on.

use crate::msg::BMsg;
use std::any::Any;
use std::collections::BTreeMap;
use wedge_core::cost::CostModel;
use wedge_core::metrics::ClientMetrics;
use wedge_lsmerkle::KvOp;
use wedge_sim::{Actor, ActorId, Context, SimDuration, SimTime};
use wedge_workload::KeySampler;

/// The trusted cloud store: a plain ordered map (no proofs needed).
pub struct CloudOnlyCloud {
    /// The authoritative store.
    pub store: BTreeMap<u64, Vec<u8>>,
    cost: CostModel,
    /// Batches committed.
    pub batches_committed: u64,
    /// Gets served.
    pub gets_served: u64,
}

impl CloudOnlyCloud {
    /// Creates the cloud store.
    pub fn new(cost: CostModel) -> Self {
        CloudOnlyCloud { store: BTreeMap::new(), cost, batches_committed: 0, gets_served: 0 }
    }
}

impl Actor<BMsg> for CloudOnlyCloud {
    fn on_message(&mut self, ctx: &mut Context<'_, BMsg>, from: ActorId, msg: BMsg) {
        match msg {
            BMsg::CoBatch { req_id, ops } => {
                ctx.use_cpu(self.cost.cloud_only_commit(ops.len() as u64));
                for op in ops {
                    match op.value {
                        Some(v) => {
                            self.store.insert(op.key, v);
                        }
                        None => {
                            self.store.remove(&op.key);
                        }
                    }
                }
                self.batches_committed += 1;
                ctx.send(from, BMsg::CoBatchAck { req_id }, 8);
            }
            BMsg::CoGet { req_id, key } => {
                // Trusted read: index probe + I/O model only (Fig 5d's
                // 0.5 ms without verification).
                ctx.use_cpu(SimDuration::from_nanos(self.cost.read_base_ns) + self.cost.io_probe());
                self.gets_served += 1;
                let value = self.store.get(&key).cloned();
                let resp = BMsg::CoGetResp { req_id, value };
                let sz = resp.wire_size();
                ctx.send(from, resp, sz);
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A Cloud-only client: same workload shapes as the WedgeChain
/// client, but commits are final on the cloud's ack (P1 ≡ P2).
pub struct CloudOnlyClient {
    cloud: ActorId,
    plan: wedge_core::client::ClientPlan,
    sampler: KeySampler,
    next_req: u64,
    batches_done: u64,
    reads_issued: u64,
    burst_remaining: u64,
    outstanding_batch: Option<(u64, SimTime)>,
    outstanding_reads: std::collections::HashMap<u64, SimTime>,
    /// Measurements.
    pub metrics: ClientMetrics,
}

impl CloudOnlyClient {
    /// Creates a client bound to the cloud actor.
    pub fn new(cloud: ActorId, plan: wedge_core::client::ClientPlan) -> Self {
        let sampler = KeySampler::new(plan.key_dist.clone(), plan.key_space);
        CloudOnlyClient {
            cloud,
            plan,
            sampler,
            next_req: 0,
            batches_done: 0,
            reads_issued: 0,
            burst_remaining: 0,
            outstanding_batch: None,
            outstanding_reads: std::collections::HashMap::new(),
            metrics: ClientMetrics::default(),
        }
    }

    fn send_batch(&mut self, ctx: &mut Context<'_, BMsg>) {
        let ops: Vec<KvOp> = (0..self.plan.batch_size)
            .map(|_| KvOp::put(self.sampler.sample(ctx.rng()), vec![0xAB; self.plan.value_size]))
            .collect();
        let req_id = self.next_req;
        self.next_req += 1;
        let msg = BMsg::CoBatch { req_id, ops };
        let sz = msg.wire_size();
        self.outstanding_batch = Some((req_id, ctx.now_with_cpu()));
        ctx.send(self.cloud, msg, sz);
    }

    fn send_read(&mut self, ctx: &mut Context<'_, BMsg>) {
        let key = self.sampler.sample(ctx.rng());
        let req_id = self.next_req;
        self.next_req += 1;
        self.outstanding_reads.insert(req_id, ctx.now_with_cpu());
        ctx.send(self.cloud, BMsg::CoGet { req_id, key }, 24);
    }

    fn pump(&mut self, ctx: &mut Context<'_, BMsg>) {
        let batches_left = self.plan.write_batches.saturating_sub(self.batches_done);
        if self.plan.interleave && self.burst_remaining > 0 {
            if self.reads_issued >= self.plan.reads {
                self.burst_remaining = 0; // read budget exhausted
            }
            while self.outstanding_reads.len() < self.plan.read_pipeline
                && self.burst_remaining > 0
                && self.reads_issued < self.plan.reads
            {
                self.send_read(ctx);
                self.reads_issued += 1;
                self.burst_remaining -= 1;
            }
            if !self.outstanding_reads.is_empty() || self.burst_remaining > 0 {
                return;
            }
        }
        if batches_left > 0 {
            if self.outstanding_batch.is_none() {
                self.send_batch(ctx);
            }
            return;
        }
        if self.reads_issued < self.plan.reads {
            while self.outstanding_reads.len() < self.plan.read_pipeline
                && self.reads_issued < self.plan.reads
            {
                self.send_read(ctx);
                self.reads_issued += 1;
            }
            return;
        }
        if self.outstanding_batch.is_none()
            && self.outstanding_reads.is_empty()
            && self.metrics.finished_at.is_none()
            && (self.plan.write_batches > 0 || self.plan.reads > 0)
        {
            self.metrics.finished_at = Some(ctx.now());
        }
    }
}

impl Actor<BMsg> for CloudOnlyClient {
    fn on_message(&mut self, ctx: &mut Context<'_, BMsg>, _from: ActorId, msg: BMsg) {
        match msg {
            BMsg::Start => self.pump(ctx),
            BMsg::CoBatchAck { req_id } => {
                let Some((id, sent)) = self.outstanding_batch.take() else { return };
                if id != req_id {
                    self.outstanding_batch = Some((id, sent));
                    return;
                }
                let ms = ctx.now().since(sent).as_millis_f64();
                // Cloud commit is final: Phase I and Phase II coincide.
                self.metrics.p1_latency.record(ms);
                self.metrics.p2_latency.record(ms);
                self.batches_done += 1;
                self.metrics.ops_p1 += self.plan.batch_size as u64;
                self.metrics.ops_p2 += self.plan.batch_size as u64;
                self.metrics.p1_timeline.record(ctx.now(), self.batches_done);
                self.metrics.p2_timeline.record(ctx.now(), self.batches_done);
                if self.plan.interleave {
                    self.burst_remaining = self.plan.batch_size as u64;
                }
                self.pump(ctx);
            }
            BMsg::CoGetResp { req_id, .. } => {
                let Some(sent) = self.outstanding_reads.remove(&req_id) else { return };
                self.metrics.read_latency.record(ctx.now().since(sent).as_millis_f64());
                self.metrics.reads_ok += 1;
                self.pump(ctx);
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
