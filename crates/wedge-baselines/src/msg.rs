//! Message set shared by the two baseline systems (§II-C, §VI).

use wedge_log::{Block, BlockProof, Entry};
use wedge_lsmerkle::{IndexReadProof, Key, KvOp, MergeRequest, MergeResult};

/// Baseline protocol messages.
#[derive(Clone, Debug)]
pub enum BMsg {
    /// Kick a client's workload.
    Start,
    // ---- Cloud-only ----
    /// Client → cloud: a batch of raw KV ops (full data over the WAN).
    CoBatch {
        /// Request id.
        req_id: u64,
        /// The operations.
        ops: Vec<KvOp>,
    },
    /// Cloud → client: batch committed (trusted, so this is final).
    CoBatchAck {
        /// Echoed request id.
        req_id: u64,
    },
    /// Client → cloud: interactive get.
    CoGet {
        /// Request id.
        req_id: u64,
        /// The key.
        key: Key,
    },
    /// Cloud → client: the value (trusted, no proof needed).
    CoGetResp {
        /// Echoed request id.
        req_id: u64,
        /// The value.
        value: Option<Vec<u8>>,
    },
    // ---- Edge-baseline ----
    /// Client → cloud: a signed batch (§II-C: writes go to the cloud
    /// first).
    EbBatch {
        /// Request id.
        req_id: u64,
        /// The signed entries.
        entries: Vec<Entry>,
    },
    /// Cloud → edge: install a certified block plus any merge deltas
    /// (the full data + regenerated tree cross the WAN — the paper's
    /// bandwidth-stress point).
    EbInstall {
        /// Install sequence number (applied in order).
        seq: u64,
        /// The client to ack once applied (the edge is near the
        /// client, so it acks directly — the paper's commit path).
        client: wedge_sim::ActorId,
        /// The client's request id.
        req_id: u64,
        /// The certified block.
        block: Block,
        /// Its certification.
        proof: BlockProof,
        /// Merges triggered by this block, in application order.
        merges: Vec<(MergeRequest, MergeResult)>,
    },
    /// Edge → cloud: install applied.
    EbInstallAck {
        /// Echoed install sequence.
        seq: u64,
    },
    /// Cloud → client: write committed (after the edge ack).
    EbBatchAck {
        /// Echoed request id.
        req_id: u64,
    },
    /// Client → edge: interactive get (served with Merkle proofs).
    EbGet {
        /// Request id.
        req_id: u64,
        /// The key.
        key: Key,
    },
    /// Edge → client: proof-carrying response.
    EbGetResp {
        /// Echoed request id.
        req_id: u64,
        /// The proof material.
        proof: Box<IndexReadProof>,
    },
}

impl BMsg {
    /// Approximate wire size for the bandwidth model.
    pub fn wire_size(&self) -> u64 {
        match self {
            BMsg::Start | BMsg::CoBatchAck { .. } | BMsg::EbBatchAck { .. } => 8,
            BMsg::CoBatch { ops, .. } => {
                16 + ops
                    .iter()
                    .map(|o| 9 + o.value.as_ref().map_or(0, |v| v.len() as u64))
                    .sum::<u64>()
            }
            BMsg::CoGet { .. } | BMsg::EbGet { .. } => 24,
            BMsg::CoGetResp { value, .. } => 16 + value.as_ref().map_or(0, |v| v.len() as u64),
            BMsg::EbBatch { entries, .. } => {
                16 + entries.iter().map(|e| e.wire_size()).sum::<u64>()
            }
            BMsg::EbInstall { block, merges, .. } => {
                let merge_bytes: u64 =
                    merges.iter().map(|(rq, rs)| rq.wire_size() + rs.wire_size()).sum();
                block.wire_size() + BlockProof::WIRE_SIZE + merge_bytes + 16
            }
            BMsg::EbInstallAck { .. } => 16,
            BMsg::EbGetResp { proof, .. } => 8 + proof.wire_size(),
        }
    }
}
