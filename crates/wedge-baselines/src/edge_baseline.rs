//! The Edge-baseline (§II-C): writes are certified at the cloud
//! *synchronously*, then the regenerated (Merkle-covered) state is
//! shipped to the edge, which serves proof-carrying reads.
//!
//! This is "mLSM used with no changes in an edge-cloud environment"
//! (§VII): every put pays client→cloud data transfer, cloud Merkle
//! regeneration, cloud→edge state transfer, and an edge ack before
//! the client hears back. Index updates apply in order, so the cloud
//! keeps at most one install outstanding per edge — the serialization
//! that caps its scalability in Fig 5a. The commit path is the
//! triangle client → cloud → edge → client; the edge's install ack
//! returns to the cloud off the client's critical path.

use crate::msg::BMsg;
use std::any::Any;
use std::collections::{HashMap, VecDeque};
use wedge_core::cost::CostModel;
use wedge_core::metrics::ClientMetrics;
use wedge_crypto::{Identity, IdentityId, KeyRegistry};
use wedge_log::{Block, BlockId, BlockProof, CertLedger, LogStore};
use wedge_lsmerkle::{
    build_read_proof, verify_read_proof, CloudIndex, LsMerkle, LsmConfig, MergeRequest, MergeResult,
};
use wedge_sim::{Actor, ActorId, Context, SimTime};
use wedge_workload::KeySampler;

/// The Edge-baseline cloud: the system of record. It seals blocks,
/// maintains its own authoritative LSMerkle, and pushes every update
/// to the edge before acking the client.
pub struct EbCloud {
    identity: Identity,
    edge: ActorId,
    cost: CostModel,
    ledger: CertLedger,
    index: CloudIndex,
    /// The cloud's authoritative copy of the tree.
    pub tree: LsMerkle,
    next_bid: BlockId,
    next_seq: u64,
    /// One install outstanding at a time; the rest queue here.
    queue: VecDeque<(ActorId, u64, Vec<wedge_log::Entry>)>,
    in_flight: Option<(ActorId, u64)>,
    /// Batches committed end-to-end.
    pub batches_committed: u64,
    /// Bytes shipped to the edge (bandwidth-stress metric).
    pub wan_bytes_to_edge: u64,
}

impl EbCloud {
    /// Creates the Edge-baseline cloud.
    pub fn new(
        identity: Identity,
        edge: ActorId,
        edge_identity: IdentityId,
        cost: CostModel,
        lsm: LsmConfig,
    ) -> Self {
        let mut index = CloudIndex::new(lsm.clone());
        let init = index.init_edge(&identity, edge_identity, 0);
        let tree = LsMerkle::new(edge_identity, lsm, init);
        EbCloud {
            identity,
            edge,
            cost,
            ledger: CertLedger::new(),
            index,
            tree,
            next_bid: BlockId(0),
            next_seq: 0,
            queue: VecDeque::new(),
            in_flight: None,
            batches_committed: 0,
            wan_bytes_to_edge: 0,
        }
    }

    /// Seals, certifies and merges a batch without the network —
    /// used by the runner's preload path. Returns the install bundle
    /// the edge replica must apply.
    pub fn preload_block(
        &mut self,
        entries: Vec<wedge_log::Entry>,
        now_ns: u64,
    ) -> (Block, BlockProof, Vec<(MergeRequest, MergeResult)>) {
        let bid = self.next_bid;
        self.next_bid = self.next_bid.next();
        let block = Block { edge: self.tree.edge(), id: bid, entries, sealed_at_ns: now_ns };
        let digest = block.digest();
        self.ledger.offer(self.tree.edge(), bid, digest);
        let proof = BlockProof::issue(&self.identity, self.tree.edge(), bid, digest);
        self.tree.apply_block_with_digest(block.clone(), digest);
        self.tree.attach_block_proof(proof.clone());
        let mut merges = Vec::new();
        while let Some(level) = self.tree.overflowing_level() {
            let req = self.tree.build_merge_request(level);
            if level == 0 && req.source_l0.is_empty() {
                break;
            }
            let res = self
                .index
                .process_merge(&self.identity, &self.ledger, &req, now_ns)
                .expect("preload merge verifies");
            self.tree.apply_merge_result(&req, res.clone()).expect("preload merge applies");
            merges.push((req, res));
        }
        (block, proof, merges)
    }

    /// Processes one queued batch: seal, certify, merge, ship to edge.
    fn process_next(&mut self, ctx: &mut Context<'_, BMsg>) {
        if self.in_flight.is_some() {
            return;
        }
        let Some((client, req_id, entries)) = self.queue.pop_front() else {
            return;
        };
        let ops = entries.len() as u64;
        // Synchronous certification + Merkle regeneration (the §II-C
        // drawback: the cloud is on the write path).
        ctx.use_cpu(self.cost.eb_cloud_process(ops));
        let bid = self.next_bid;
        self.next_bid = self.next_bid.next();
        let block =
            Block { edge: self.tree.edge(), id: bid, entries, sealed_at_ns: ctx.now().as_nanos() };
        let digest = block.digest();
        self.ledger.offer(self.tree.edge(), bid, digest);
        let proof = BlockProof::issue(&self.identity, self.tree.edge(), bid, digest);
        self.tree.apply_block_with_digest(block.clone(), digest);
        self.tree.attach_block_proof(proof.clone());

        // Run merges locally (cloud trusts itself) and collect the
        // deltas so the edge replica can replay them.
        let mut merges: Vec<(MergeRequest, MergeResult)> = Vec::new();
        while let Some(level) = self.tree.overflowing_level() {
            let req = self.tree.build_merge_request(level);
            if level == 0 && req.source_l0.is_empty() {
                break;
            }
            let records: u64 = req
                .source_l0
                .iter()
                .map(|p| p.records().len() as u64)
                .chain(req.source_pages.iter().map(|p| p.records().len() as u64))
                .chain(req.target_pages.iter().map(|p| p.records().len() as u64))
                .sum();
            ctx.use_cpu(self.cost.merge(records));
            let res = self
                .index
                .process_merge(&self.identity, &self.ledger, &req, ctx.now().as_nanos())
                .expect("cloud's own merge must verify");
            self.tree.apply_merge_result(&req, res.clone()).expect("cloud applies own merge");
            merges.push((req, res));
        }

        let seq = self.next_seq;
        self.next_seq += 1;
        let msg = BMsg::EbInstall { seq, client, req_id, block, proof, merges };
        let sz = msg.wire_size();
        self.wan_bytes_to_edge += sz;
        self.in_flight = Some((client, req_id));
        ctx.send(self.edge, msg, sz);
    }
}

impl Actor<BMsg> for EbCloud {
    fn on_message(&mut self, ctx: &mut Context<'_, BMsg>, from: ActorId, msg: BMsg) {
        match msg {
            BMsg::EbBatch { req_id, entries } => {
                self.queue.push_back((from, req_id, entries));
                self.process_next(ctx);
            }
            BMsg::EbInstallAck { .. } => {
                // The edge already acked the client; this just releases
                // the next install.
                if self.in_flight.take().is_some() {
                    self.batches_committed += 1;
                }
                self.process_next(ctx);
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The Edge-baseline edge: a passive, certified replica that serves
/// proof-carrying reads.
pub struct EbEdge {
    cloud: ActorId,
    cost: CostModel,
    /// The replica tree (every page certified on arrival).
    pub tree: LsMerkle,
    /// The replica log.
    pub log: LogStore,
    /// Gets served.
    pub gets_served: u64,
}

impl EbEdge {
    /// Creates the edge replica.
    pub fn new(cloud: ActorId, cost: CostModel, tree: LsMerkle) -> Self {
        EbEdge { cloud, cost, tree, log: LogStore::new(), gets_served: 0 }
    }
}

impl Actor<BMsg> for EbEdge {
    fn on_message(&mut self, ctx: &mut Context<'_, BMsg>, from: ActorId, msg: BMsg) {
        match msg {
            BMsg::EbInstall { seq, client, req_id, block, proof, merges } => {
                ctx.use_cpu(self.cost.eb_edge_apply());
                self.log.append(block.clone());
                self.log.attach_proof(proof.clone());
                self.tree.apply_block_with_digest(block, proof.digest);
                self.tree.attach_block_proof(proof);
                for (req, res) in merges {
                    self.tree.apply_merge_result(&req, res).expect("replica replays merge");
                }
                // Ack the nearby client directly; release the cloud's
                // install slot in parallel.
                ctx.send(client, BMsg::EbBatchAck { req_id }, 8);
                ctx.send(self.cloud, BMsg::EbInstallAck { seq }, 16);
            }
            BMsg::EbGet { req_id, key } => {
                let pages = (self.tree.l0_pages().len() + self.tree.levels().len()) as u64;
                ctx.use_cpu(self.cost.build_read_proof(pages));
                self.gets_served += 1;
                let proof = build_read_proof(&self.tree, key);
                let resp = BMsg::EbGetResp { req_id, proof: Box::new(proof) };
                let sz = resp.wire_size();
                ctx.send(from, resp, sz);
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The Edge-baseline client: writes to the cloud, reads from the edge
/// (verifying proofs).
pub struct EbClient {
    identity: Identity,
    cloud: ActorId,
    edge: ActorId,
    edge_identity: IdentityId,
    cloud_identity: IdentityId,
    registry: KeyRegistry,
    cost: CostModel,
    plan: wedge_core::client::ClientPlan,
    sampler: KeySampler,
    next_req: u64,
    next_seq: u64,
    batches_done: u64,
    reads_issued: u64,
    burst_remaining: u64,
    outstanding_batch: Option<(u64, SimTime)>,
    outstanding_reads: HashMap<u64, SimTime>,
    /// Measurements.
    pub metrics: ClientMetrics,
}

impl EbClient {
    /// Creates the client.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        identity: Identity,
        cloud: ActorId,
        edge: ActorId,
        edge_identity: IdentityId,
        cloud_identity: IdentityId,
        registry: KeyRegistry,
        cost: CostModel,
        plan: wedge_core::client::ClientPlan,
    ) -> Self {
        let sampler = KeySampler::new(plan.key_dist.clone(), plan.key_space);
        EbClient {
            identity,
            cloud,
            edge,
            edge_identity,
            cloud_identity,
            registry,
            cost,
            plan,
            sampler,
            next_req: 0,
            next_seq: 0,
            batches_done: 0,
            reads_issued: 0,
            burst_remaining: 0,
            outstanding_batch: None,
            outstanding_reads: HashMap::new(),
            metrics: ClientMetrics::default(),
        }
    }

    fn send_batch(&mut self, ctx: &mut Context<'_, BMsg>) {
        let mut entries = Vec::with_capacity(self.plan.batch_size);
        for _ in 0..self.plan.batch_size {
            let key = self.sampler.sample(ctx.rng());
            let op = wedge_lsmerkle::KvOp::put(key, vec![0xAB; self.plan.value_size]);
            // Modeled signatures: the entry CPU cost is in the cloud's
            // processing budget, as with the WedgeChain client.
            entries.push(wedge_log::Entry {
                client: self.identity.id,
                sequence: self.next_seq,
                payload: op.encode(),
                signature: wedge_crypto::Signature { e: 0, s: 0 },
            });
            self.next_seq += 1;
        }
        let req_id = self.next_req;
        self.next_req += 1;
        let msg = BMsg::EbBatch { req_id, entries };
        let sz = msg.wire_size();
        self.outstanding_batch = Some((req_id, ctx.now_with_cpu()));
        ctx.send(self.cloud, msg, sz);
    }

    fn send_read(&mut self, ctx: &mut Context<'_, BMsg>) {
        let key = self.sampler.sample(ctx.rng());
        let req_id = self.next_req;
        self.next_req += 1;
        self.outstanding_reads.insert(req_id, ctx.now_with_cpu());
        ctx.send(self.edge, BMsg::EbGet { req_id, key }, 24);
    }

    fn pump(&mut self, ctx: &mut Context<'_, BMsg>) {
        let batches_left = self.plan.write_batches.saturating_sub(self.batches_done);
        if self.plan.interleave && self.burst_remaining > 0 {
            if self.reads_issued >= self.plan.reads {
                self.burst_remaining = 0; // read budget exhausted
            }
            while self.outstanding_reads.len() < self.plan.read_pipeline
                && self.burst_remaining > 0
                && self.reads_issued < self.plan.reads
            {
                self.send_read(ctx);
                self.reads_issued += 1;
                self.burst_remaining -= 1;
            }
            if !self.outstanding_reads.is_empty() || self.burst_remaining > 0 {
                return;
            }
        }
        if batches_left > 0 {
            if self.outstanding_batch.is_none() {
                self.send_batch(ctx);
            }
            return;
        }
        if self.reads_issued < self.plan.reads {
            while self.outstanding_reads.len() < self.plan.read_pipeline
                && self.reads_issued < self.plan.reads
            {
                self.send_read(ctx);
                self.reads_issued += 1;
            }
            return;
        }
        if self.outstanding_batch.is_none()
            && self.outstanding_reads.is_empty()
            && self.metrics.finished_at.is_none()
            && (self.plan.write_batches > 0 || self.plan.reads > 0)
        {
            self.metrics.finished_at = Some(ctx.now());
        }
    }
}

impl Actor<BMsg> for EbClient {
    fn on_message(&mut self, ctx: &mut Context<'_, BMsg>, _from: ActorId, msg: BMsg) {
        match msg {
            BMsg::Start => self.pump(ctx),
            BMsg::EbBatchAck { req_id } => {
                let Some((id, sent)) = self.outstanding_batch.take() else { return };
                if id != req_id {
                    self.outstanding_batch = Some((id, sent));
                    return;
                }
                let ms = ctx.now().since(sent).as_millis_f64();
                // Certified before ack: commit is final.
                self.metrics.p1_latency.record(ms);
                self.metrics.p2_latency.record(ms);
                self.batches_done += 1;
                self.metrics.ops_p1 += self.plan.batch_size as u64;
                self.metrics.ops_p2 += self.plan.batch_size as u64;
                self.metrics.p1_timeline.record(ctx.now(), self.batches_done);
                self.metrics.p2_timeline.record(ctx.now(), self.batches_done);
                if self.plan.interleave {
                    self.burst_remaining = self.plan.batch_size as u64;
                }
                self.pump(ctx);
            }
            BMsg::EbGetResp { req_id, proof } => {
                let Some(sent) = self.outstanding_reads.remove(&req_id) else { return };
                ctx.use_cpu(self.cost.verify_read());
                let result = verify_read_proof(
                    &proof,
                    self.edge_identity,
                    self.cloud_identity,
                    &self.registry,
                    ctx.now().as_nanos(),
                    None,
                );
                match result {
                    Ok(_) => {
                        self.metrics.read_latency.record(ctx.now().since(sent).as_millis_f64());
                        self.metrics.reads_ok += 1;
                    }
                    Err(_) => {
                        self.metrics.reads_rejected += 1;
                    }
                }
                self.pump(ctx);
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
