//! Differential test: the simulator-driven and thread-driven runtimes
//! are two drivers over the *same* sans-IO protocol engines, so the
//! same scripted workload must produce identical protocol outcomes —
//! byte-identical block digests, identical certification results,
//! identical gossip watermark content, identical dispute verdicts, and
//! identical verified-read verdicts.
//!
//! The only nondeterministic input to a block digest is its seal time,
//! so the threaded run replays the simulator's `sealed_at_ns` values
//! via `ThreadedConfig::seal_times`. Entries are byte-identical by
//! construction: both runtimes derive the same client/edge/cloud
//! identities, assign sequence numbers from 0 inside the shared
//! `ClientEngine`, and sign with the same deterministic Schnorr
//! scheme.
//!
//! Time-driven behaviour is engine-owned ("earliest deadline" state +
//! `Tick`), so gossip cadence and dispute timeouts run through the
//! exact same code in both runtimes: the simulator arms a virtual
//! timer at `next_deadline_ns()`, the threads bound `recv_timeout`
//! with it. Neither driver schedules protocol work itself.

use std::time::Duration;
use wedgechain::core::client::ClientPlan;
use wedgechain::core::config::SystemConfig;
use wedgechain::core::fault::FaultPlan;
use wedgechain::core::harness::{MultiPartitionHarness, SystemHarness};
use wedgechain::core::messages::DisputeVerdict;
use wedgechain::core::threaded::{ThreadedCluster, ThreadedConfig};
use wedgechain::lsmerkle::LsmConfig;
use wedgechain::sim::SimDuration;

/// The scripted workload: distinct keys, deterministic values. 12
/// single-put blocks crosses the paper-eval L0 threshold (10), so a
/// cloud-verified merge runs in both runtimes too.
fn workload() -> Vec<(u64, Vec<u8>)> {
    (0..12u64).map(|k| (k, format!("value-{k}").into_bytes())).collect()
}

#[test]
fn sim_and_threads_agree_on_digests_certs_and_reads() {
    let ops = workload();

    // --- simulator run (real crypto, paper-eval tree shape) ---
    let cfg = SystemConfig { batch_size: 1, ..SystemConfig::real_crypto() };
    let mut sim = SystemHarness::wedgechain(cfg);
    for (k, v) in &ops {
        let put = sim.put_certified(0, *k, v.clone());
        assert!(put.phase2_latency.is_some(), "sim block {k} certified");
    }
    let mut sim_reads = Vec::new();
    for (k, _) in &ops {
        let got = sim.get(0, *k);
        assert!(got.verify_error.is_none(), "sim read of key {k} verifies");
        sim_reads.push(got.value);
    }
    let edge_id = sim.edge_node().id();
    // Per block: (bid, digest, edge-side proof digest, cloud-certified digest, seal time).
    let sim_blocks: Vec<_> = sim
        .edge_node()
        .log
        .iter()
        .map(|sb| {
            (
                sb.block.id,
                sb.block.digest(),
                sb.proof.as_ref().map(|p| p.digest),
                sim.cloud_node().ledger.lookup(edge_id, sb.block.id).copied(),
                sb.block.sealed_at_ns,
            )
        })
        .collect();
    assert_eq!(sim_blocks.len(), ops.len(), "one block per scripted put");

    // --- threaded run, replaying the simulator's seal times ---
    let cluster = ThreadedCluster::start(ThreadedConfig {
        lsm: LsmConfig::paper_eval(),
        batch_size: 1,
        seal_times: Some(vec![sim_blocks.iter().map(|b| b.4).collect()]),
        ..ThreadedConfig::default()
    });
    for (k, v) in &ops {
        let reply = cluster.put(*k, v.clone()).expect("batch size 1 seals every put");
        let proof = reply
            .certified
            .recv_timeout(Duration::from_secs(10))
            .expect("threaded block certified");
        assert_eq!(proof.digest, reply.receipt.block_digest, "threaded cert matches receipt");
    }
    let mut thread_reads = Vec::new();
    for (k, _) in &ops {
        let read = cluster.get(*k).expect("threaded read verifies");
        thread_reads.push(read.value);
    }
    let report = cluster.shutdown().expect("sole owner receives the final state");

    // --- identical block digests, edge proofs, and cloud certifications ---
    let edge_report = &report.edges[0];
    assert_eq!(edge_report.blocks.len(), sim_blocks.len(), "same number of sealed blocks");
    for ((bid, digest, edge_proof, certified), (s_bid, s_digest, s_proof, s_cert, _)) in
        edge_report.blocks.iter().zip(&sim_blocks)
    {
        assert_eq!(bid, s_bid, "block ids agree");
        assert_eq!(digest, s_digest, "block {bid}: digests byte-identical across runtimes");
        assert_eq!(edge_proof, s_proof, "block {bid}: edge-side Phase-II proof digests agree");
        assert_eq!(certified, s_cert, "block {bid}: cloud-certified digests agree");
        assert_eq!(
            certified.as_ref(),
            Some(digest),
            "block {bid}: certification outcome is the honest digest"
        );
    }

    // --- identical verified-read verdicts ---
    assert_eq!(sim_reads, thread_reads, "verified reads return the same values");
    for ((k, v), got) in ops.iter().zip(&thread_reads) {
        assert_eq!(got.as_ref(), Some(v), "key {k} returns its written value");
    }

    // Both runtimes exercised the merge path (12 blocks > L0 threshold
    // of 10) with the shared engine.
    assert!(report.cloud_stats.merges_processed >= 1, "threaded merge ran");
    assert!(sim.cloud_node().stats.merges_processed >= 1, "sim merge ran");
    assert_eq!(
        edge_report.edge_stats.blocks_sealed,
        sim.edge_node().stats.blocks_sealed,
        "same number of blocks sealed"
    );
}

/// The same workload absent scripted seal times still agrees on
/// everything except the (time-bearing) digests — certification is
/// content-honest in both runtimes.
#[test]
fn threads_certify_exactly_what_they_seal_without_scripting() {
    let cluster = ThreadedCluster::start(ThreadedConfig {
        lsm: LsmConfig::paper_eval(),
        batch_size: 1,
        ..ThreadedConfig::default()
    });
    for (k, v) in workload() {
        let reply = cluster.put(k, v).expect("sealed");
        let proof = reply.certified.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(proof.digest, reply.receipt.block_digest);
    }
    let report = cluster.shutdown().expect("report");
    for (bid, digest, edge_proof, certified) in &report.edges[0].blocks {
        assert_eq!(certified.as_ref(), Some(digest), "block {bid} certified honestly");
        assert_eq!(edge_proof.as_ref(), Some(digest), "block {bid} proof attached");
    }
}

/// Per-edge scripted puts for the three-partition differential: edge 0
/// crosses the merge threshold, edge 1 includes the withheld block,
/// edge 2 is small and honest.
fn n_edge_workload() -> Vec<Vec<(u64, Vec<u8>)>> {
    vec![
        (0..12u64).map(|k| (k, format!("p0-{k}").into_bytes())).collect(),
        (0..4u64).map(|k| (100 + k, format!("p1-{k}").into_bytes())).collect(),
        (0..3u64).map(|k| (200 + k, format!("p2-{k}").into_bytes())).collect(),
    ]
}

/// The N-edge differential with a dispute resolved *purely by
/// engine-owned timeouts*: edge 1 withholds certification of its block
/// 1; in both runtimes the client's engine deadline files the
/// `MissingCertification` dispute, and the cloud convicts. No driver
/// schedules the timeout — the sim arms a timer at the engine's
/// deadline, the threads bound `recv_timeout` with it.
#[test]
fn n_edge_sim_and_threads_agree_including_timeout_disputes() {
    let partitions = 3;
    let withheld_bid = 1u64;
    let faults =
        vec![FaultPlan::honest(), FaultPlan::withhold_on(withheld_bid), FaultPlan::honest()];
    let per_edge = n_edge_workload();

    // --- simulator run ---
    let cfg = SystemConfig {
        batch_size: 1,
        dispute_timeout_ms: 1_000,
        gossip_period_ms: 200,
        ..SystemConfig::real_crypto()
    };
    let mut sim =
        MultiPartitionHarness::new(cfg, partitions, 1, ClientPlan::idle(), faults.clone());
    for (p, ops) in per_edge.iter().enumerate() {
        for (i, (k, v)) in ops.iter().enumerate() {
            if p == 1 && i as u64 == withheld_bid {
                // Withheld: Phase I only; the dispute deadline takes over.
                sim.put(p, 0, *k, v.clone());
            } else {
                let put = sim.put_certified(p, 0, *k, v.clone());
                assert!(put.phase2_latency.is_some(), "sim p{p} block {i} certified");
            }
        }
    }
    // Let the dispute deadline fire, the verdict land, and a gossip
    // round follow the final certification.
    sim.run_for(SimDuration::from_millis(3_000));

    let sim_punished: Vec<_> = {
        let mut v: Vec<_> = sim.cloud_node().punished.iter().copied().collect();
        v.sort_by_key(|id| id.0);
        v
    };
    assert_eq!(sim_punished, vec![sim.edge_node(1).id()], "sim convicted exactly edge 1");
    assert_eq!(sim.cloud_node().stats.disputes_upheld, 1);
    assert_eq!(sim.client_metrics(1, 0).disputes_filed, 1, "one engine-deadline dispute");
    assert!(sim.client_node(1, 0).halted, "sim client 1 halted on the verdict");

    let sim_state: Vec<_> = (0..partitions)
        .map(|p| {
            let edge_id = sim.edge_node(p).id();
            let blocks: Vec<_> = sim
                .edge_node(p)
                .log
                .iter()
                .map(|sb| {
                    (
                        sb.block.id,
                        sb.block.digest(),
                        sb.proof.as_ref().map(|pr| pr.digest),
                        sim.cloud_node().ledger.lookup(edge_id, sb.block.id).copied(),
                        sb.block.sealed_at_ns,
                    )
                })
                .collect();
            let certified_len = sim.cloud_node().ledger.contiguous_len(edge_id);
            let watermark_len =
                sim.client_node(p, 0).watermarks.latest(edge_id).map(|wm| wm.log_len);
            (blocks, certified_len, watermark_len)
        })
        .collect();
    // The withheld block splits edge 1's certified prefix.
    assert_eq!(sim_state[0].1, 12);
    assert_eq!(sim_state[1].1, withheld_bid);
    assert_eq!(sim_state[2].1, 3);

    // --- threaded run, replaying the simulator's per-edge seal times ---
    let cluster = ThreadedCluster::start(ThreadedConfig {
        lsm: LsmConfig::paper_eval(),
        num_edges: partitions,
        batch_size: 1,
        faults,
        gossip_period: Some(Duration::from_millis(40)),
        dispute_timeout: Duration::from_millis(300),
        seal_times: Some(
            sim_state.iter().map(|(blocks, _, _)| blocks.iter().map(|b| b.4).collect()).collect(),
        ),
        ..ThreadedConfig::default()
    });
    for (p, ops) in per_edge.iter().enumerate() {
        for (i, (k, v)) in ops.iter().enumerate() {
            let reply = cluster.put_on(p, *k, v.clone()).expect("batch size 1 seals every put");
            if !(p == 1 && i as u64 == withheld_bid) {
                let proof = reply
                    .certified
                    .recv_timeout(Duration::from_secs(10))
                    .expect("threaded block certified");
                assert_eq!(proof.digest, reply.receipt.block_digest);
            }
        }
    }
    // Dispute deadline (300 ms) + verdict + one more gossip round.
    std::thread::sleep(Duration::from_millis(600));
    let report = cluster.shutdown().expect("report");

    // --- identical per-edge certifications and digests ---
    assert_eq!(report.edges.len(), partitions);
    for (p, (edge_report, (blocks, certified_len, watermark_len))) in
        report.edges.iter().zip(&sim_state).enumerate()
    {
        assert_eq!(edge_report.blocks.len(), blocks.len(), "edge {p}: same block count");
        for ((bid, digest, proof, cert), (s_bid, s_digest, s_proof, s_cert, _)) in
            edge_report.blocks.iter().zip(blocks)
        {
            assert_eq!(bid, s_bid, "edge {p}: block ids agree");
            assert_eq!(digest, s_digest, "edge {p} block {bid}: digests byte-identical");
            assert_eq!(proof, s_proof, "edge {p} block {bid}: proof digests agree");
            assert_eq!(cert, s_cert, "edge {p} block {bid}: certified digests agree");
        }
        // Identical gossip watermark *content* (timestamps differ by
        // clock domain; the signed statement is the certified prefix).
        assert_eq!(&edge_report.certified_len, certified_len, "edge {p}: certified prefix");
        if p != 1 {
            assert_eq!(
                &edge_report.watermark_len, watermark_len,
                "edge {p}: client-held watermark agrees"
            );
            assert_eq!(edge_report.watermark_len, Some(*certified_len));
        }
    }

    // --- identical dispute outcome, reached through engine deadlines ---
    assert_eq!(report.punished, sim_punished, "same edge convicted in both runtimes");
    assert_eq!(report.edges[1].client_metrics.disputes_filed, 1);
    assert_eq!(report.edges[1].client_metrics.disputes_upheld, 1);
    assert_eq!(
        report.edges[1].verdicts,
        vec![DisputeVerdict::EdgePunished {
            edge: report.edges[1].edge,
            grounds: "block never certified after timeout".into(),
        }],
        "threaded verdict matches the cloud engine's ruling"
    );
    for p in [0usize, 2] {
        assert!(report.edges[p].verdicts.is_empty(), "honest edge {p} drew no verdict");
        assert_eq!(report.edges[p].client_metrics.disputes_filed, 0);
    }
}
