//! Differential test: the simulator-driven and thread-driven runtimes
//! are two drivers over the *same* sans-IO protocol engines, so the
//! same scripted workload must produce identical protocol outcomes —
//! byte-identical block digests, identical certification results, and
//! identical verified-read verdicts.
//!
//! The only nondeterministic input to a block digest is its seal time,
//! so the threaded run replays the simulator's `sealed_at_ns` values
//! via `ThreadedConfig::seal_times`. Entries are byte-identical by
//! construction: both runtimes derive the same client/edge/cloud
//! identities, assign sequence numbers from 0, and sign with the same
//! deterministic Schnorr scheme.

use std::time::Duration;
use wedgechain::core::config::SystemConfig;
use wedgechain::core::harness::SystemHarness;
use wedgechain::core::threaded::{ThreadedCluster, ThreadedConfig};
use wedgechain::lsmerkle::LsmConfig;

/// The scripted workload: distinct keys, deterministic values. 12
/// single-put blocks crosses the paper-eval L0 threshold (10), so a
/// cloud-verified merge runs in both runtimes too.
fn workload() -> Vec<(u64, Vec<u8>)> {
    (0..12u64).map(|k| (k, format!("value-{k}").into_bytes())).collect()
}

#[test]
fn sim_and_threads_agree_on_digests_certs_and_reads() {
    let ops = workload();

    // --- simulator run (real crypto, paper-eval tree shape) ---
    let cfg = SystemConfig { batch_size: 1, ..SystemConfig::real_crypto() };
    let mut sim = SystemHarness::wedgechain(cfg);
    for (k, v) in &ops {
        let put = sim.put_certified(0, *k, v.clone());
        assert!(put.phase2_latency.is_some(), "sim block {k} certified");
    }
    let mut sim_reads = Vec::new();
    for (k, _) in &ops {
        let got = sim.get(0, *k);
        assert!(got.verify_error.is_none(), "sim read of key {k} verifies");
        sim_reads.push(got.value);
    }
    let edge_id = sim.edge_node().id();
    // Per block: (bid, digest, edge-side proof digest, cloud-certified digest, seal time).
    let sim_blocks: Vec<_> = sim
        .edge_node()
        .log
        .iter()
        .map(|sb| {
            (
                sb.block.id,
                sb.block.digest(),
                sb.proof.as_ref().map(|p| p.digest),
                sim.cloud_node().ledger.lookup(edge_id, sb.block.id).copied(),
                sb.block.sealed_at_ns,
            )
        })
        .collect();
    assert_eq!(sim_blocks.len(), ops.len(), "one block per scripted put");

    // --- threaded run, replaying the simulator's seal times ---
    let cluster = ThreadedCluster::start(ThreadedConfig {
        lsm: LsmConfig::paper_eval(),
        batch_size: 1,
        cloud_hop_latency: Duration::ZERO,
        seal_times: Some(sim_blocks.iter().map(|b| b.4).collect()),
    });
    for (k, v) in &ops {
        let reply = cluster.put(*k, v.clone()).expect("batch size 1 seals every put");
        let proof = reply
            .certified
            .recv_timeout(Duration::from_secs(10))
            .expect("threaded block certified");
        assert_eq!(proof.digest, reply.receipt.block_digest, "threaded cert matches receipt");
    }
    let mut thread_reads = Vec::new();
    for (k, _) in &ops {
        let read = cluster.get(*k).expect("threaded read verifies");
        thread_reads.push(read.value);
    }
    let report = cluster.shutdown().expect("sole owner receives the final state");

    // --- identical block digests, edge proofs, and cloud certifications ---
    assert_eq!(report.blocks.len(), sim_blocks.len(), "same number of sealed blocks");
    for ((bid, digest, edge_proof, certified), (s_bid, s_digest, s_proof, s_cert, _)) in
        report.blocks.iter().zip(&sim_blocks)
    {
        assert_eq!(bid, s_bid, "block ids agree");
        assert_eq!(digest, s_digest, "block {bid}: digests byte-identical across runtimes");
        assert_eq!(edge_proof, s_proof, "block {bid}: edge-side Phase-II proof digests agree");
        assert_eq!(certified, s_cert, "block {bid}: cloud-certified digests agree");
        assert_eq!(
            certified.as_ref(),
            Some(digest),
            "block {bid}: certification outcome is the honest digest"
        );
    }

    // --- identical verified-read verdicts ---
    assert_eq!(sim_reads, thread_reads, "verified reads return the same values");
    for ((k, v), got) in ops.iter().zip(&thread_reads) {
        assert_eq!(got.as_ref(), Some(v), "key {k} returns its written value");
    }

    // Both runtimes exercised the merge path (12 blocks > L0 threshold
    // of 10) with the shared engine.
    assert!(report.cloud_stats.merges_processed >= 1, "threaded merge ran");
    assert!(sim.cloud_node().stats.merges_processed >= 1, "sim merge ran");
    assert_eq!(
        report.edge_stats.blocks_sealed,
        sim.edge_node().stats.blocks_sealed,
        "same number of blocks sealed"
    );
}

/// The same workload absent scripted seal times still agrees on
/// everything except the (time-bearing) digests — certification is
/// content-honest in both runtimes.
#[test]
fn threads_certify_exactly_what_they_seal_without_scripting() {
    let cluster = ThreadedCluster::start(ThreadedConfig {
        lsm: LsmConfig::paper_eval(),
        batch_size: 1,
        ..ThreadedConfig::default()
    });
    for (k, v) in workload() {
        let reply = cluster.put(k, v).expect("sealed");
        let proof = reply.certified.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(proof.digest, reply.receipt.block_digest);
    }
    let report = cluster.shutdown().expect("report");
    for (bid, digest, edge_proof, certified) in &report.blocks {
        assert_eq!(certified.as_ref(), Some(digest), "block {bid} certified honestly");
        assert_eq!(edge_proof.as_ref(), Some(digest), "block {bid} proof attached");
    }
}
