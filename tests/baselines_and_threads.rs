//! Integration tests for the comparison systems and the real-threads
//! runtime.

use std::time::Duration;
use wedgechain::baselines::{run_scenario, SystemKind};
use wedgechain::core::config::SystemConfig;
use wedgechain::core::threaded::{ThreadedCluster, ThreadedConfig};
use wedgechain::lsmerkle::LsmConfig;
use wedgechain::workload::{Mix, Scenario};

fn quick_scenario() -> Scenario {
    Scenario { batches_per_client: 8, ..Scenario::paper_default() }
}

#[test]
fn all_three_systems_complete_the_same_workload() {
    let s = quick_scenario();
    for kind in SystemKind::ALL {
        let out = run_scenario(kind, SystemConfig::default(), &s);
        assert_eq!(out.agg.total_ops, 800, "{}", kind.name());
        assert!(out.agg.p1_latency_ms > 0.0, "{}", kind.name());
    }
}

#[test]
fn baselines_have_no_commit_phase_gap() {
    // Cloud-only and Edge-baseline certify synchronously: P1 == P2.
    let s = quick_scenario();
    for kind in [SystemKind::CloudOnly, SystemKind::EdgeBaseline] {
        let out = run_scenario(kind, SystemConfig::default(), &s);
        assert!(
            (out.agg.p1_latency_ms - out.agg.p2_latency_ms).abs() < 1e-9,
            "{}: p1 {} != p2 {}",
            kind.name(),
            out.agg.p1_latency_ms,
            out.agg.p2_latency_ms
        );
    }
    // WedgeChain has a real gap (the whole point).
    let wc = run_scenario(SystemKind::WedgeChain, SystemConfig::default(), &s);
    assert!(wc.agg.p2_latency_ms > wc.agg.p1_latency_ms + 30.0);
}

#[test]
fn edge_baseline_serializes_installs() {
    // With many clients the EB cloud's one-install-at-a-time rule caps
    // throughput: per-client rates must fall as clients are added.
    let mut s = quick_scenario();
    s.clients = 1;
    let t1 = run_scenario(SystemKind::EdgeBaseline, SystemConfig::default(), &s);
    s.clients = 9;
    let t9 = run_scenario(SystemKind::EdgeBaseline, SystemConfig::default(), &s);
    let scale = t9.agg.throughput_kops / t1.agg.throughput_kops;
    assert!(
        scale < 3.0,
        "Edge-baseline scaled {scale}x with 9x clients — installs are not serialized"
    );
}

#[test]
fn all_read_mix_verifies_everything() {
    let s = Scenario {
        reads_per_client: 50,
        key_space: 1_000,
        ..Scenario::paper_default().with_mix(Mix::AllRead)
    };
    let wc = run_scenario(SystemKind::WedgeChain, SystemConfig::default(), &s);
    assert_eq!(wc.agg.total_ops, 50, "all reads verified");
    let eb = run_scenario(SystemKind::EdgeBaseline, SystemConfig::default(), &s);
    assert_eq!(eb.agg.total_ops, 50, "all EB reads verified");
}

#[test]
fn threaded_cluster_full_lifecycle() {
    let cluster = ThreadedCluster::start(ThreadedConfig {
        lsm: LsmConfig { level_thresholds: vec![2, 2, 4], page_capacity: 4 },
        batch_size: 2,
        cloud_hop_latency: Duration::from_millis(1),
        ..ThreadedConfig::default()
    });
    // Write enough to force merges; hold the last Phase II receipt.
    let mut last = None;
    for k in 0..16u64 {
        if let Some(r) = cluster.put(k, format!("t{k}").into_bytes()) {
            last = Some(r);
        }
    }
    if let Some(r) = cluster.flush() {
        last = Some(r);
    }
    let reply = last.expect("at least one batch sealed");
    let proof = reply.certified.recv_timeout(Duration::from_secs(5)).unwrap();
    assert_eq!(proof.digest, reply.receipt.block_digest);
    // Every write readable with a verified proof.
    for k in 0..16u64 {
        let read = cluster.get(k).unwrap();
        assert_eq!(read.value, Some(format!("t{k}").into_bytes()), "key {k}");
    }
    // Absent keys produce verifiable absence.
    assert_eq!(cluster.get(10_000).unwrap().value, None);
    cluster.shutdown();
}

#[test]
fn threaded_concurrent_readers() {
    let cluster =
        ThreadedCluster::start(ThreadedConfig { batch_size: 1, ..ThreadedConfig::default() });
    for k in 0..8u64 {
        cluster.put(k, vec![k as u8; 16]);
    }
    // Hammer reads from multiple threads concurrently.
    std::thread::scope(|scope| {
        for t in 0..4 {
            let cluster = &cluster;
            scope.spawn(move || {
                for i in 0..20u64 {
                    let k = (t + i) % 8;
                    let read = cluster.get(k).unwrap();
                    assert_eq!(read.value, Some(vec![k as u8; 16]));
                }
            });
        }
    });
    cluster.shutdown();
}
