//! Workspace-level integration tests: the full WedgeChain stack —
//! crypto, simulator, log, LSMerkle, protocol — exercised through the
//! public facade crate.

use wedgechain::core::client::ClientPlan;
use wedgechain::core::config::SystemConfig;
use wedgechain::core::fault::FaultPlan;
use wedgechain::core::harness::SystemHarness;
use wedgechain::log::CommitPhase;
use wedgechain::sim::Region;

#[test]
fn lazy_certification_two_phases() {
    let mut h = SystemHarness::wedgechain(SystemConfig::real_crypto());
    let put = h.put_certified(0, 1, b"v1".to_vec());
    let p1 = put.phase1_latency.as_millis_f64();
    let p2 = put.phase2_latency.unwrap().as_millis_f64();
    // Phase I ≈ client↔edge (local); Phase II adds the C↔V WAN RTT.
    assert!(p1 < 30.0, "p1 {p1}");
    assert!(p2 > 61.0, "p2 {p2}");
    assert!(p2 - p1 > 50.0, "phases too close: {p1} vs {p2}");
}

#[test]
fn writes_survive_merges_and_read_back() {
    let mut cfg = SystemConfig::real_crypto();
    cfg.lsm = wedgechain::lsmerkle::LsmConfig::exposition();
    let mut h = SystemHarness::wedgechain(cfg);
    // Enough writes to force cascading merges through every level.
    for k in 0..30u64 {
        h.put_certified(0, k, format!("value-{k}").into_bytes());
    }
    assert!(h.edge_node().stats.merges_completed > 0, "merges must have run");
    for k in 0..30u64 {
        let got = h.get(0, k);
        assert_eq!(got.verify_error, None, "key {k}");
        assert_eq!(got.value, Some(format!("value-{k}").into_bytes()), "key {k}");
    }
}

#[test]
fn overwrites_return_newest_version() {
    let mut h = SystemHarness::wedgechain(SystemConfig::real_crypto());
    h.put_certified(0, 5, b"old".to_vec());
    h.put_certified(0, 5, b"mid".to_vec());
    h.put_certified(0, 5, b"new".to_vec());
    let got = h.get(0, 5);
    assert_eq!(got.value.as_deref(), Some(b"new".as_ref()));
}

#[test]
fn reads_from_multiple_clients_agree() {
    let mut cfg = SystemConfig::real_crypto();
    cfg.num_clients = 3;
    let mut h = SystemHarness::wedgechain(cfg);
    h.put_certified(0, 9, b"shared".to_vec());
    // Agreement: all clients see the same certified value.
    for c in 0..3 {
        let got = h.get(c, 9);
        assert_eq!(got.verify_error, None, "client {c}");
        assert_eq!(got.value.as_deref(), Some(b"shared".as_ref()), "client {c}");
        assert_eq!(got.phase, CommitPhase::Phase2);
    }
}

#[test]
fn equivocating_edge_is_punished() {
    let cfg = SystemConfig { dispute_timeout_ms: 1_000, ..SystemConfig::real_crypto() };
    let plan = ClientPlan::writer(4, 20, 50, 1_000);
    let mut h = SystemHarness::wedgechain_with(cfg, plan, FaultPlan::equivocate_on(1));
    h.run(None);
    let cloud = h.cloud_node();
    assert!(!cloud.punished.is_empty(), "equivocation went unpunished");
    assert!(cloud.registry.is_revoked(h.edge_node().id()));
    assert!(h.client_metrics(0).disputes_filed >= 1);
}

#[test]
fn withholding_edge_is_punished_after_timeout() {
    let cfg = SystemConfig { dispute_timeout_ms: 1_000, ..SystemConfig::real_crypto() };
    let plan = ClientPlan::writer(3, 10, 50, 1_000);
    let mut h = SystemHarness::wedgechain_with(cfg, plan, FaultPlan::withhold_on(0));
    h.run(None);
    assert!(!h.cloud_node().punished.is_empty(), "withholding went unpunished");
    assert_eq!(h.client_metrics(0).disputes_upheld, 1);
}

#[test]
fn honest_edge_is_never_punished() {
    let cfg = SystemConfig { dispute_timeout_ms: 1_500, ..SystemConfig::default() };
    let plan = ClientPlan { reads: 40, interleave: true, ..ClientPlan::writer(10, 50, 100, 5_000) };
    let mut h = SystemHarness::wedgechain_with(cfg, plan, FaultPlan::honest());
    h.run(None);
    assert!(h.cloud_node().punished.is_empty());
    assert_eq!(h.client_metrics(0).disputes_upheld, 0);
    assert_eq!(h.client_metrics(0).reads_rejected, 0);
}

#[test]
fn freshness_window_rejects_frozen_edge() {
    // The edge stops applying merges/refreshes (stale serving); a
    // client with a freshness window must reject its reads.
    let cfg = SystemConfig {
        freshness_window_ms: Some(2_000),
        gossip_period_ms: 500,
        ..SystemConfig::real_crypto()
    };
    let plan = ClientPlan::idle();
    let fault = FaultPlan { freeze_after_epoch: Some(0), ..FaultPlan::honest() };
    let mut h = SystemHarness::wedgechain_with(cfg, plan, fault);
    h.put_certified(0, 1, b"v".to_vec());
    // Let virtual time pass beyond the window (gossip keeps running,
    // but the frozen edge ignores the refreshed global roots).
    let deadline = h.sim.now() + wedgechain::sim::SimDuration::from_secs(10);
    h.sim.run_until(deadline, 1_000_000);
    let got = h.get(0, 1);
    assert!(
        matches!(got.verify_error, Some(wedgechain::lsmerkle::ProofError::Stale { .. })),
        "stale read accepted: {:?}",
        got.verify_error
    );
}

#[test]
fn fresh_edge_passes_freshness_window() {
    let cfg = SystemConfig {
        freshness_window_ms: Some(2_000),
        gossip_period_ms: 500,
        ..SystemConfig::real_crypto()
    };
    let mut h = SystemHarness::wedgechain(cfg);
    h.put_certified(0, 1, b"v".to_vec());
    let deadline = h.sim.now() + wedgechain::sim::SimDuration::from_secs(10);
    h.sim.run_until(deadline, 1_000_000);
    let got = h.get(0, 1);
    assert_eq!(got.verify_error, None, "honest edge read rejected");
    assert_eq!(got.value.as_deref(), Some(b"v".as_ref()));
}

#[test]
fn wedgechain_beats_cloud_only_on_writes_everywhere() {
    // Fig 7(a) invariant: wherever the cloud is, WedgeChain's Phase-I
    // latency is unchanged and below Cloud-only's.
    for cloud in [Region::Oregon, Region::Virginia, Region::Ireland, Region::Mumbai] {
        let cfg = SystemConfig { cloud_region: cloud, ..SystemConfig::default() };
        let mut h = SystemHarness::wedgechain(cfg);
        let put = h.put(0, 1, b"v".to_vec());
        let p1 = put.phase1_latency.as_millis_f64();
        assert!(p1 < 30.0, "cloud@{cloud}: p1 {p1}");
    }
}

#[test]
fn deterministic_end_to_end() {
    let run = || {
        let cfg = SystemConfig { seed: 7, ..SystemConfig::default() };
        let plan =
            ClientPlan { reads: 30, interleave: true, ..ClientPlan::writer(8, 40, 80, 2_000) };
        let mut h = SystemHarness::wedgechain_with(cfg, plan, FaultPlan::honest());
        h.run(None);
        let a = h.aggregate();
        (
            a.total_ops,
            (a.p1_latency_ms * 1e6) as u64,
            (a.p2_latency_ms * 1e6) as u64,
            (a.read_latency_ms * 1e6) as u64,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn background_compaction_folds_fragmented_levels() {
    // The compaction clock is engine-owned, so the plain simulator
    // gets background sweeps with no runtime support: arm the period
    // and fragmentation introduced by interleaved inserts is folded
    // back to full pages while the workload is still running.
    let mut cfg = SystemConfig::real_crypto();
    cfg.lsm = wedgechain::lsmerkle::LsmConfig::exposition();
    cfg.compaction_period_ms = Some(25);
    let mut h = SystemHarness::wedgechain(cfg);

    // Sparse wide fill: keys 8 apart, so later bands insert *between*
    // existing keys. Only inserts fragment — they change a dirty
    // region's record count, leaving a partial tail page; pure
    // overwrites re-split into the same full pages.
    for k in 0..48u64 {
        h.put_certified(0, k * 8, format!("wide-{k}").into_bytes());
    }

    // Narrow insert bands at striding offsets until a background
    // sweep finds a foldable run and compacts it. Deterministic sim:
    // once this converges it always converges identically.
    let mut folded = false;
    'bands: for round in 0..60u64 {
        let base = (round * 37) % 47;
        for i in 0..3u64 {
            h.put_certified(0, base * 8 + 1 + i, format!("band-{round}-{i}").into_bytes());
            if h.cloud_node().index.compaction_stats().fold_runs > 0 {
                folded = true;
                break 'bands;
            }
        }
    }
    assert!(folded, "no background sweep folded a fragmented level");
    let stats = h.cloud_node().index.compaction_stats();
    assert!(
        stats.pages_folded_in > stats.pages_folded_out,
        "folding must shrink the page count: {stats:?}"
    );
    assert!(h.edge_node().stats.compactions_requested >= 1, "edge clock never fired");

    // Compaction must be invisible to readers: values still verify.
    for k in 0..48u64 {
        let got = h.get(0, k * 8);
        assert_eq!(got.verify_error, None, "key {}", k * 8);
        assert_eq!(got.value, Some(format!("wide-{k}").into_bytes()), "key {}", k * 8);
    }
}
