//! Multi-partition deployments: several untrusted edges, one trusted
//! cloud. Punishment is per-edge — a lying partition burns while the
//! others keep working.

use wedgechain::core::client::ClientPlan;
use wedgechain::core::config::SystemConfig;
use wedgechain::core::fault::FaultPlan;
use wedgechain::core::harness::MultiPartitionHarness;

#[test]
fn partitions_progress_independently() {
    let cfg = SystemConfig::default();
    let plan = ClientPlan::writer(6, 50, 100, 5_000);
    let mut h = MultiPartitionHarness::new(cfg, 3, 2, plan, vec![]);
    h.run(10_000_000);
    for p in 0..3 {
        for c in 0..2 {
            let m = h.client_metrics(p, c);
            assert_eq!(m.ops_p1, 300, "partition {p} client {c}");
        }
        assert_eq!(h.edge_node(p).stats.blocks_sealed, 12, "partition {p}");
    }
    // The shared cloud certified all partitions' blocks.
    assert_eq!(h.cloud_node().stats.certs_issued, 36);
    assert!(h.cloud_node().punished.is_empty());
}

#[test]
fn one_malicious_partition_does_not_poison_the_rest() {
    let cfg = SystemConfig { dispute_timeout_ms: 1_000, ..SystemConfig::default() };
    let plan = ClientPlan::writer(5, 40, 100, 5_000);
    // Partition 1's edge equivocates on its block 2.
    let faults = vec![FaultPlan::honest(), FaultPlan::equivocate_on(2), FaultPlan::honest()];
    let mut h = MultiPartitionHarness::new(cfg, 3, 1, plan, faults);
    h.run(10_000_000);
    let cloud = h.cloud_node();
    // Exactly the guilty edge was punished.
    assert_eq!(cloud.punished.len(), 1);
    assert!(cloud.punished.contains(&h.edge_node(1).id()));
    // Honest partitions completed their workloads fully certified.
    for p in [0usize, 2] {
        let m = h.client_metrics(p, 0);
        assert_eq!(m.ops_p1, 200, "partition {p}");
        assert_eq!(m.ops_p2, 200, "partition {p} certification incomplete");
    }
}

#[test]
fn block_ids_are_per_partition() {
    // §III: "ids are unique relative to an edge node, but are not
    // unique across edge nodes" — the cert ledger must key by edge.
    let cfg = SystemConfig::default();
    let plan = ClientPlan::writer(3, 10, 50, 1_000);
    let mut h = MultiPartitionHarness::new(cfg, 2, 1, plan, vec![]);
    h.run(10_000_000);
    // Both partitions used block ids 0..3; all six got certified.
    assert_eq!(h.cloud_node().stats.certs_issued, 6);
    assert_eq!(h.cloud_node().stats.equivocations_detected, 0);
}
