//! The workspace lints itself: plain `cargo test` runs wedge-lint
//! over every crate and checks `WIRE_ABI.lock` against the live
//! sources, so a policy violation or an unlocked wire-tag change
//! fails the suite, not just the dedicated CI job.

use std::path::Path;

fn workspace_root() -> &'static Path {
    // The root package's manifest dir IS the workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_is_lint_clean() {
    let violations = wedge_lint::lint_workspace(workspace_root()).expect("walk workspace");
    assert!(
        violations.is_empty(),
        "wedge-lint found {} violation(s):\n{}",
        violations.len(),
        violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn wire_abi_lock_matches_source() {
    let root = workspace_root();
    let live = wedge_lint::current_abi(root).expect("read wire sources").expect("extract wire ABI");
    let committed = std::fs::read_to_string(root.join(wedge_lint::abi::LOCK_PATH))
        .expect("WIRE_ABI.lock is committed");
    // `--write-abi` is stable: regenerating must reproduce the
    // committed bytes exactly (this is what the CI drift check runs).
    assert_eq!(
        live.render(),
        committed,
        "WIRE_ABI.lock is stale — regenerate: cargo run -p wedge-lint -- --write-abi"
    );
}

#[test]
fn wire_abi_covers_every_wire_msg_tag() {
    let live = wedge_lint::current_abi(workspace_root())
        .expect("read wire sources")
        .expect("extract wire ABI");
    // The seed protocol shipped 20 tags; the count may only grow.
    assert!(live.tags.len() >= 20, "only {} tags extracted", live.tags.len());
    assert_eq!(live.magic, "WDGC");
    let mut tags: Vec<u8> = live.tags.iter().map(|(t, _, _)| *t).collect();
    tags.dedup();
    assert_eq!(tags.len(), live.tags.len(), "duplicate wire tags");
}
