//! The three-way differential: one scripted workload executed on the
//! deterministic **simulator**, the **threaded** runtime, and the
//! **loopback-TCP** runtime (`wedge-net`) must produce byte-identical
//! protocol outcomes — per-edge block digests, edge-side Phase-II
//! proof digests, cloud-certified digests, gossip watermark content,
//! verified-read verdicts, dispute verdicts, and punished sets.
//!
//! This is the proof that the sans-IO engines are genuinely
//! transport-independent: the simulator passes enum values through a
//! virtual WAN, the threads pass them over `mpsc` channels, and the
//! socket runtime serializes every message into the length-framed
//! `WireMsg` envelope and decodes it (hostile-input-hardened) on the
//! other side of a real TCP connection. If any codec dropped, mangled
//! or reordered a field, the digests and verdicts below would diverge.
//!
//! The scenario includes a withholding edge whose conviction is
//! reached purely through the client engine's dispute deadline — over
//! TCP, the dispute and verdict cross real sockets.

use std::time::Duration;
use wedgechain::core::client::ClientPlan;
use wedgechain::core::config::SystemConfig;
use wedgechain::core::fault::FaultPlan;
use wedgechain::core::harness::MultiPartitionHarness;
use wedgechain::core::messages::DisputeVerdict;
use wedgechain::core::threaded::{EdgeRunReport, ThreadedCluster, ThreadedConfig};
use wedgechain::lsmerkle::LsmConfig;
use wedgechain::net::{NetCluster, NetConfig};
use wedgechain::sim::SimDuration;

/// Per-edge scripted puts: edge 0 crosses the merge threshold (merge
/// requests/results ship pages over each transport), edge 1 includes
/// the withheld block, edge 2 is small and honest.
fn per_edge_workload() -> Vec<Vec<(u64, Vec<u8>)>> {
    vec![
        (0..12u64).map(|k| (k, format!("p0-{k}").into_bytes())).collect(),
        (0..4u64).map(|k| (100 + k, format!("p1-{k}").into_bytes())).collect(),
        (0..3u64).map(|k| (200 + k, format!("p2-{k}").into_bytes())).collect(),
    ]
}

const WITHHELD_BID: u64 = 1;

/// One block's comparable state: (bid, block digest, edge-side proof
/// digest, certified digest).
type BlockOutcome = (u64, [u8; 32], Option<[u8; 32]>, Option<[u8; 32]>);

/// What one runtime's run is reduced to for comparison.
struct EdgeOutcome {
    blocks: Vec<BlockOutcome>,
    certified_len: u64,
    watermark_len: Option<u64>,
    disputes_filed: u64,
    disputes_upheld: u64,
    verdicts: Vec<DisputeVerdict>,
}

fn reduce_report(edge: &EdgeRunReport) -> EdgeOutcome {
    EdgeOutcome {
        blocks: edge
            .blocks
            .iter()
            .map(|(bid, d, p, c)| {
                (
                    bid.0,
                    *d.as_bytes(),
                    p.as_ref().map(|x| *x.as_bytes()),
                    c.as_ref().map(|x| *x.as_bytes()),
                )
            })
            .collect(),
        certified_len: edge.certified_len,
        watermark_len: edge.watermark_len,
        disputes_filed: edge.client_metrics.disputes_filed,
        disputes_upheld: edge.client_metrics.disputes_upheld,
        verdicts: edge.verdicts.clone(),
    }
}

fn assert_outcomes_agree(label: &str, got: &[EdgeOutcome], want: &[EdgeOutcome]) {
    assert_eq!(got.len(), want.len(), "{label}: partition count");
    for (p, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.blocks, w.blocks, "{label} edge {p}: blocks/digests/proofs/certs");
        assert_eq!(g.certified_len, w.certified_len, "{label} edge {p}: certified prefix");
        if p != 1 {
            // The withheld edge's client may or may not have received
            // a fresher watermark after the conviction (the punished
            // edge is dropped from gossip) — compare honest edges.
            assert_eq!(g.watermark_len, w.watermark_len, "{label} edge {p}: watermark content");
        }
        assert_eq!(g.disputes_filed, w.disputes_filed, "{label} edge {p}: disputes filed");
        assert_eq!(g.disputes_upheld, w.disputes_upheld, "{label} edge {p}: disputes upheld");
        assert_eq!(g.verdicts, w.verdicts, "{label} edge {p}: verdicts");
    }
}

#[test]
fn sim_threads_and_sockets_agree_end_to_end() {
    let partitions = 3;
    let faults =
        vec![FaultPlan::honest(), FaultPlan::withhold_on(WITHHELD_BID), FaultPlan::honest()];
    let per_edge = per_edge_workload();

    // ---------------- simulator (the reference) ----------------
    let cfg = SystemConfig {
        batch_size: 1,
        dispute_timeout_ms: 1_000,
        gossip_period_ms: 200,
        ..SystemConfig::real_crypto()
    };
    let mut sim =
        MultiPartitionHarness::new(cfg, partitions, 1, ClientPlan::idle(), faults.clone());
    let mut sim_reads = vec![Vec::new(); partitions];
    for (p, ops) in per_edge.iter().enumerate() {
        for (i, (k, v)) in ops.iter().enumerate() {
            if p == 1 && i as u64 == WITHHELD_BID {
                sim.put(p, 0, *k, v.clone()); // Phase I only
            } else {
                let put = sim.put_certified(p, 0, *k, v.clone());
                assert!(put.phase2_latency.is_some(), "sim p{p} block {i} certified");
            }
        }
    }
    // Dispute deadline + verdict + one more gossip round.
    sim.run_for(SimDuration::from_millis(3_000));
    // Verified reads (after the dispute so the halted client 1 skips).
    for (p, ops) in per_edge.iter().enumerate() {
        if p == 1 {
            continue; // halted by the verdict
        }
        for (k, _) in ops {
            let got = sim.get(p, 0, *k);
            assert!(got.verify_error.is_none(), "sim read p{p}/{k} verifies");
            sim_reads[p].push(got.value);
        }
    }

    let mut seal_times = Vec::new();
    let mut sim_outcomes = Vec::new();
    for p in 0..partitions {
        let edge_id = sim.edge_node(p).id();
        let blocks: Vec<BlockOutcome> = sim
            .edge_node(p)
            .log
            .iter()
            .map(|sb| {
                (
                    sb.block.id.0,
                    *sb.block.digest().as_bytes(),
                    sb.proof.as_ref().map(|pr| *pr.digest.as_bytes()),
                    sim.cloud_node().ledger.lookup(edge_id, sb.block.id).map(|d| *d.as_bytes()),
                )
            })
            .collect();
        seal_times
            .push(sim.edge_node(p).log.iter().map(|sb| sb.block.sealed_at_ns).collect::<Vec<_>>());
        sim_outcomes.push(EdgeOutcome {
            blocks,
            certified_len: sim.cloud_node().ledger.contiguous_len(edge_id),
            watermark_len: sim.client_node(p, 0).watermarks.latest(edge_id).map(|wm| wm.log_len),
            disputes_filed: sim.client_metrics(p, 0).disputes_filed,
            disputes_upheld: sim.client_metrics(p, 0).disputes_upheld,
            verdicts: if p == 1 {
                vec![DisputeVerdict::EdgePunished {
                    edge: sim.edge_node(1).id(),
                    grounds: "block never certified after timeout".into(),
                }]
            } else {
                Vec::new()
            },
        });
    }
    let sim_punished: Vec<_> = {
        let mut v: Vec<_> = sim.cloud_node().punished.iter().copied().collect();
        v.sort_by_key(|id| id.0);
        v
    };
    assert_eq!(sim_punished, vec![sim.edge_node(1).id()], "sim convicted exactly edge 1");
    assert_eq!(sim_outcomes[1].certified_len, WITHHELD_BID, "withheld block splits the prefix");

    // A driver closure so threads and sockets run the *same* script.
    let drive_threads = |cluster: &ThreadedCluster| {
        drive_cluster_generic(
            &per_edge,
            |p, k, v| cluster.put_on(p, k, v).expect("batch size 1 seals every put"),
            |p, k| cluster.get_on(p, k).expect("read verifies"),
        )
    };
    let drive_net = |cluster: &NetCluster| {
        drive_cluster_generic(
            &per_edge,
            |p, k, v| cluster.put_on(p, k, v).expect("batch size 1 seals every put"),
            |p, k| cluster.get_on(p, k).expect("read verifies"),
        )
    };

    // ---------------- threaded runtime ----------------
    let threaded = ThreadedCluster::start(ThreadedConfig {
        lsm: LsmConfig::paper_eval(),
        num_edges: partitions,
        batch_size: 1,
        faults: faults.clone(),
        gossip_period: Some(Duration::from_millis(40)),
        dispute_timeout: Duration::from_millis(300),
        seal_times: Some(seal_times.clone()),
        // The sim reference runs inline (width 1); running the OS-thread
        // runtimes with real worker pools proves pooling never changes
        // a digest, verdict, or counter.
        pool_threads: 2,
        ..ThreadedConfig::default()
    });
    let threaded_reads = drive_threads(&threaded);
    std::thread::sleep(Duration::from_millis(600));
    let threaded_report = threaded.shutdown().expect("threaded report");
    let threaded_outcomes: Vec<_> = threaded_report.edges.iter().map(reduce_report).collect();
    assert_outcomes_agree("threads-vs-sim", &threaded_outcomes, &sim_outcomes);
    assert_eq!(threaded_report.punished, sim_punished, "threads: same punished set");
    assert_eq!(threaded_reads, sim_reads, "threads: same verified-read values");

    // ---------------- socket runtime (loopback TCP) ----------------
    let net = NetCluster::start(NetConfig {
        lsm: LsmConfig::paper_eval(),
        num_edges: partitions,
        batch_size: 1,
        faults,
        gossip_period: Some(Duration::from_millis(40)),
        dispute_timeout: Duration::from_millis(300),
        seal_times: Some(seal_times),
        pool_threads: 2,
        ..NetConfig::default()
    });
    let net_reads = drive_net(&net);
    std::thread::sleep(Duration::from_millis(600));
    let net_report = net.shutdown().expect("net report");
    let net_outcomes: Vec<_> = net_report.edges.iter().map(reduce_report).collect();
    assert_outcomes_agree("sockets-vs-sim", &net_outcomes, &sim_outcomes);
    assert_eq!(net_report.punished, sim_punished, "sockets: same punished set");
    assert_eq!(net_reads, sim_reads, "sockets: same verified-read values");
    assert_eq!(
        net_report.failed_sends, 0,
        "sockets: zero dropped frames — every write_frame failure is counted per peer: {:?}",
        net_report.failed_sends_by_peer
    );

    // All three exercised the merge path with the shared engine.
    assert!(sim.cloud_node().stats.merges_processed >= 1, "sim merge ran");
    assert!(threaded_report.cloud_stats.merges_processed >= 1, "threaded merge ran");
    assert!(net_report.cloud_stats.merges_processed >= 1, "socket merge ran");

    // Merge replies are delta-encoded identically everywhere: the
    // same pages ship in full, the same pages ship as references —
    // whether the reference resolves through an in-process Arc or a
    // decoded wire frame.
    let sim_stats = &sim.cloud_node().stats;
    let sim_delta = (
        sim_stats.merge_reply_pages_full,
        sim_stats.merge_reply_pages_reused,
        sim_stats.merge_reply_bytes_saved,
    );
    let threaded_delta = (
        threaded_report.cloud_stats.merge_reply_pages_full,
        threaded_report.cloud_stats.merge_reply_pages_reused,
        threaded_report.cloud_stats.merge_reply_bytes_saved,
    );
    let net_delta = (
        net_report.cloud_stats.merge_reply_pages_full,
        net_report.cloud_stats.merge_reply_pages_reused,
        net_report.cloud_stats.merge_reply_bytes_saved,
    );
    assert_eq!(threaded_delta, sim_delta, "threads: same delta reuse as sim");
    assert_eq!(net_delta, sim_delta, "sockets: same delta reuse as sim");

    // And so are merge *requests*: the edge's full-vs-delta choice and
    // the per-page full/reference split are a pure function of the
    // replayed merge sequence, so the request-side counters must agree
    // byte-for-byte across all three transports (including zero nacks
    // — nothing was evicted in this scenario).
    let sim_req = (
        sim_stats.merge_req_pages_full,
        sim_stats.merge_req_pages_reused,
        sim_stats.merge_req_bytes_saved,
        sim_stats.merge_req_nacks,
    );
    let threaded_req = (
        threaded_report.cloud_stats.merge_req_pages_full,
        threaded_report.cloud_stats.merge_req_pages_reused,
        threaded_report.cloud_stats.merge_req_bytes_saved,
        threaded_report.cloud_stats.merge_req_nacks,
    );
    let net_req = (
        net_report.cloud_stats.merge_req_pages_full,
        net_report.cloud_stats.merge_req_pages_reused,
        net_report.cloud_stats.merge_req_bytes_saved,
        net_report.cloud_stats.merge_req_nacks,
    );
    assert_eq!(threaded_req, sim_req, "threads: same request-side delta split as sim");
    assert_eq!(net_req, sim_req, "sockets: same request-side delta split as sim");
    assert!(sim_req.0 > 0, "the cold-start merge shipped its pages in full");
    assert_eq!(sim_req.3, 0, "no resend nacks in a warm, eviction-free run");

    // Compaction stats are a pure function of the replayed merge
    // sequence, so the three runtimes must agree byte-for-byte. In
    // this scenario the compaction clock is unarmed (seal_times and
    // wall-clock deadlines cannot combine) and no organic merge
    // folds, so agreeing means agreeing on zero — the sim-side
    // compaction e2e test covers the non-zero case deterministically.
    let sim_compaction = sim.cloud_node().index.compaction_stats();
    assert_eq!(threaded_report.compaction, sim_compaction, "threads: same compaction stats");
    assert_eq!(net_report.compaction, sim_compaction, "sockets: same compaction stats");

    // The shared proof cache is wired identically in both OS-thread
    // runtimes: the scripted reads run synchronously in script order,
    // so the witness-check sequence — and with it the hit/miss split —
    // matches exactly. Unmerged partitions carry several L0 witnesses
    // per proof, so repeat reads genuinely hit.
    assert_eq!(
        (threaded_report.proof_cache_hits, threaded_report.proof_cache_misses),
        (net_report.proof_cache_hits, net_report.proof_cache_misses),
        "same shared-cache hit/miss split across runtimes"
    );
    assert!(threaded_report.proof_cache_hits > 0, "repeat L0 witnesses hit the shared cache");
}

/// Runs the scripted workload against one runtime: puts (waiting for
/// Phase II on all but the withheld block, whose conviction the
/// dispute deadline handles), then verified reads on the honest
/// partitions. Returns the read values per partition.
fn drive_cluster_generic(
    per_edge: &[Vec<(u64, Vec<u8>)>],
    put: impl Fn(usize, u64, Vec<u8>) -> wedgechain::core::threaded::PutReply,
    get: impl Fn(usize, u64) -> wedgechain::core::engine::GetOutcome,
) -> Vec<Vec<Option<Vec<u8>>>> {
    for (p, ops) in per_edge.iter().enumerate() {
        for (i, (k, v)) in ops.iter().enumerate() {
            let reply = put(p, *k, v.clone());
            if !(p == 1 && i as u64 == WITHHELD_BID) {
                let proof =
                    reply.certified.recv_timeout(Duration::from_secs(10)).expect("block certified");
                assert_eq!(proof.digest, reply.receipt.block_digest, "cert matches receipt");
            }
        }
    }
    let mut reads = vec![Vec::new(); per_edge.len()];
    for (p, ops) in per_edge.iter().enumerate() {
        if p == 1 {
            continue; // the withheld partition's client halts on the verdict
        }
        for (k, _) in ops {
            reads[p].push(get(p, *k).value);
        }
    }
    reads
}
