//! The complete §IV-E attack matrix, end to end: every lie in the
//! paper's threat model is injected, detected, and punished — and the
//! "lazy but honest" case is *not* punished.

use wedgechain::core::client::ClientPlan;
use wedgechain::core::config::SystemConfig;
use wedgechain::core::fault::FaultPlan;
use wedgechain::core::harness::SystemHarness;
use wedgechain::core::messages::Msg;
use wedgechain::log::BlockId;

fn run_with_fault(fault: FaultPlan, cfg: SystemConfig) -> SystemHarness {
    let plan = ClientPlan::writer(5, 30, 80, 2_000);
    let mut h = SystemHarness::wedgechain_with(cfg, plan, fault);
    h.run(None);
    h
}

#[test]
fn wrong_read_is_detected_and_punished() {
    // The edge serves block 1's content when asked for block 0.
    let cfg = SystemConfig { dispute_timeout_ms: 800, ..SystemConfig::real_crypto() };
    let fault = FaultPlan { wrong_read: [(0u64, 1u64)].into(), ..FaultPlan::honest() };
    let plan = ClientPlan::writer(4, 20, 50, 1_000);
    let mut h = SystemHarness::wedgechain_with(cfg, plan, fault);
    h.run(None);
    // A client audits block 0 by reading it from the log.
    let client = h.clients[0];
    let cloud = h.cloud;
    h.sim.inject(cloud, client, Msg::DoLogRead { bid: BlockId(0) });
    for _ in 0..500_000 {
        if !h.sim.step() || !h.cloud_node().punished.is_empty() {
            break;
        }
    }
    assert!(
        !h.cloud_node().punished.is_empty(),
        "wrong-read went unpunished (disputes: {} filed / {} upheld)",
        h.client_metrics(0).disputes_filed,
        h.cloud_node().stats.disputes_upheld,
    );
}

#[test]
fn honest_log_read_is_not_punished() {
    // Same audit flow against an honest edge: the Phase-I read's audit
    // timer fires, the cloud compares digests, and dismisses.
    let cfg = SystemConfig { dispute_timeout_ms: 800, ..SystemConfig::real_crypto() };
    let plan = ClientPlan::writer(4, 20, 50, 1_000);
    let mut h = SystemHarness::wedgechain_with(cfg, plan, FaultPlan::honest());
    h.run(None);
    let client = h.clients[0];
    let cloud = h.cloud;
    h.sim.inject(cloud, client, Msg::DoLogRead { bid: BlockId(0) });
    let deadline = h.sim.now() + wedgechain::sim::SimDuration::from_secs(5);
    h.sim.run_until(deadline, 1_000_000);
    assert!(h.cloud_node().punished.is_empty(), "honest edge punished after log-read audit");
}

#[test]
fn suppressed_proof_forwards_trigger_disputes_but_no_conviction() {
    // The edge certifies honestly but never forwards Phase-II proofs
    // ("lazy", not lying). Clients dispute on timeout; the cloud finds
    // matching digests, dismisses, and re-sends the proofs itself.
    let cfg = SystemConfig { dispute_timeout_ms: 800, ..SystemConfig::default() };
    let fault = FaultPlan { suppress_proof_forwards: true, ..FaultPlan::honest() };
    let h = run_with_fault(fault, cfg);
    let m = h.client_metrics(0);
    assert!(m.disputes_filed >= 1, "no dispute was filed");
    // Lazy is not a crime: no punishment, and the client still reached
    // Phase II via the cloud's re-sent proofs.
    assert!(h.cloud_node().punished.is_empty(), "honest-but-lazy edge was punished");
    assert!(m.ops_p2 > 0, "client never reached Phase II via dispute path");
}

#[test]
fn equivocation_detected_even_without_client_timeouts() {
    // With a generous timeout, detection still happens through the
    // client's Phase-II digest comparison (forwarded proof vs receipt).
    let cfg = SystemConfig { dispute_timeout_ms: 60_000, ..SystemConfig::default() };
    let h = run_with_fault(FaultPlan::equivocate_on(0), cfg);
    assert!(!h.cloud_node().punished.is_empty(), "equivocation undetected");
}

#[test]
fn punished_edge_is_ignored_thereafter() {
    let cfg = SystemConfig { dispute_timeout_ms: 500, ..SystemConfig::default() };
    let fault = FaultPlan::equivocate_on(0);
    let plan = ClientPlan::writer(10, 20, 50, 1_000);
    let mut h = SystemHarness::wedgechain_with(cfg, plan, fault);
    h.run(None);
    let cloud = h.cloud_node();
    assert!(!cloud.punished.is_empty());
    // After punishment the cloud certifies nothing more from this
    // edge: certs issued stays below blocks sealed.
    let sealed = h.edge_node().stats.blocks_sealed;
    assert!(
        cloud.stats.certs_issued < sealed,
        "cloud kept certifying a punished edge ({} certs / {} blocks)",
        cloud.stats.certs_issued,
        sealed
    );
    // Re-registration is barred (assumption 2 of §II-D).
    let edge_id = h.edge_node().id();
    assert!(h.cloud_node().registry.is_revoked(edge_id));
}

#[test]
fn data_full_mode_still_correct() {
    // The data-free ablation switch must not change semantics.
    let cfg = SystemConfig { data_free: false, ..SystemConfig::real_crypto() };
    let mut h = SystemHarness::wedgechain(cfg);
    h.put_certified(0, 3, b"x".to_vec());
    let got = h.get(0, 3);
    assert_eq!(got.verify_error, None);
    assert_eq!(got.value.as_deref(), Some(b"x".as_ref()));
}
