//! One protocol, three transports — this is the third one.
//!
//! Runs a two-edge WedgeChain cluster where the cloud, both edges and
//! both clients live behind **real TCP sockets** on loopback
//! (`wedge-net`): every receipt, certification, merge, gossip
//! watermark, read proof, dispute and verdict is serialized into the
//! length-framed `WireMsg` envelope, written to a socket, and decoded
//! with hostile-input checks on the other side. The engines are the
//! exact same sans-IO state machines the simulator and the threaded
//! runtime drive.
//!
//! Run with: `cargo run --release --example net_loopback`

// Examples narrate to stdout by design.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::time::Duration;
use wedgechain::core::fault::FaultPlan;
use wedgechain::net::{NetCluster, NetConfig};

fn main() {
    println!("== WedgeChain over loopback TCP ==\n");

    let cluster = NetCluster::start(NetConfig {
        num_edges: 2,
        batch_size: 2,
        gossip_period: Some(Duration::from_millis(25)),
        dispute_timeout: Duration::from_millis(400),
        // Edge 1 withholds certification of its block 1: detection
        // and punishment happen over the same sockets as the data.
        faults: vec![FaultPlan::honest(), FaultPlan::withhold_on(1)],
        pipeline_depth: 2,
        ..NetConfig::default()
    });

    // --- partition 0: honest writes, certified end-to-end ---
    let mut last = None;
    for k in 0..8u64 {
        last = cluster.put_on(0, k, format!("value-{k}").into_bytes());
    }
    if let Some(reply) = last {
        let proof = reply.certified.recv_timeout(Duration::from_secs(5)).expect("Phase II");
        println!("edge 0: block {} Phase-II certified over TCP", proof.bid);
    }
    for k in [0u64, 3, 7] {
        let read = cluster.get_on(0, k).expect("verified read");
        println!(
            "edge 0: get({k}) -> {:?} (proof decoded from the wire, verified locally)",
            read.value.as_deref().map(String::from_utf8_lossy)
        );
    }

    // --- partition 1: a withholding edge gets convicted ---
    for k in 0..4u64 {
        cluster.put_on(1, 100 + k, vec![k as u8]);
    }
    println!("\nedge 1 withholds certification of block 1; waiting for the dispute deadline…");
    std::thread::sleep(Duration::from_millis(900));

    let report = cluster.shutdown().expect("sole owner receives the report");
    println!("\n== final state ==");
    for (p, edge) in report.edges.iter().enumerate() {
        println!(
            "edge {p}: {} blocks sealed, certified prefix {}, {} dispute(s) upheld",
            edge.edge_stats.blocks_sealed, edge.certified_len, edge.client_metrics.disputes_upheld
        );
    }
    println!("punished edges: {:?}", report.punished);
    assert_eq!(report.punished, vec![report.edges[1].edge], "withholder convicted over TCP");
    assert!(report.edges[0].client_metrics.disputes_upheld == 0, "honest edge untouched");
    println!("\nOK: same engines, real sockets, lies still impossible to keep.");
}
