//! Malice, detection, punishment: the lazy-trust guarantee end to end.
//!
//! Three attacks from the paper's threat model (§IV-E), each scripted
//! with a [`FaultPlan`] against a live deployment:
//!
//! 1. **Equivocation** — the edge promises the client one block digest
//!    and certifies a different one at the cloud.
//! 2. **Certification withholding** — the edge never certifies; the
//!    client's dispute timeout fires.
//! 3. **Omission** — the edge denies a block that gossip watermarks
//!    prove exists.
//!
//! In every case the edge is detected and punished (revoked, barred
//! from re-entry).
//!
//! Run with: `cargo run --release --example dispute_audit`

// Examples narrate to stdout by design.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use wedgechain::core::client::ClientPlan;
use wedgechain::core::config::SystemConfig;
use wedgechain::core::fault::FaultPlan;
use wedgechain::core::harness::SystemHarness;
use wedgechain::core::messages::Msg;
use wedgechain::log::BlockId;

fn attack(title: &str, fault: FaultPlan, cfg: SystemConfig) -> SystemHarness {
    println!("--- {title} ---");
    let plan = ClientPlan::writer(5, 50, 100, 10_000);
    let mut h = SystemHarness::wedgechain_with(cfg, plan, fault);
    h.run(None);
    h
}

fn report(h: &SystemHarness) {
    let cloud = h.cloud_node();
    let m = h.client_metrics(0);
    println!("  disputes filed by client : {}", m.disputes_filed);
    println!("  equivocations detected   : {}", cloud.stats.equivocations_detected);
    println!("  disputes upheld          : {}", cloud.stats.disputes_upheld);
    println!("  edge punished (revoked)  : {}\n", !cloud.punished.is_empty());
}

fn main() {
    println!("WedgeChain dispute audit — every lie is eventually detected\n");

    // 1. Equivocation at block 2: the cloud sees a digest that does
    //    not match what the edge signed to the client. Detection can
    //    happen at the cloud (duplicate certify) or via the client's
    //    proof comparison; either way the edge is revoked.
    let h = attack(
        "Attack 1: equivocation on block 2",
        FaultPlan::equivocate_on(2),
        SystemConfig { dispute_timeout_ms: 2_000, ..SystemConfig::real_crypto() },
    );
    report(&h);
    assert!(!h.cloud_node().punished.is_empty(), "equivocation must be punished");

    // 2. Withholding certification of block 1: Phase II never arrives,
    //    the client's timeout files a dispute, the cloud finds no
    //    certification and punishes.
    let h = attack(
        "Attack 2: certification withheld for block 1",
        FaultPlan::withhold_on(1),
        SystemConfig { dispute_timeout_ms: 2_000, ..SystemConfig::real_crypto() },
    );
    report(&h);
    assert!(!h.cloud_node().punished.is_empty(), "withholding must be punished");

    // 3. Omission: the edge stores block 0 but answers "not available".
    //    The client holds a gossip watermark proving blocks 0..n exist,
    //    so the signed denial is itself the conviction.
    println!("--- Attack 3: omission of block 0 on a log read ---");
    let cfg = SystemConfig {
        gossip_period_ms: 300,
        dispute_timeout_ms: 2_000,
        ..SystemConfig::real_crypto()
    };
    let plan = ClientPlan::writer(5, 50, 100, 10_000);
    let mut h = SystemHarness::wedgechain_with(cfg, plan, FaultPlan::omit_on(0));
    h.run(None); // writes finish; gossip watermarks reach the client
    let client = h.clients[0];
    let cloud_actor = h.cloud;
    h.sim.inject(cloud_actor, client, Msg::DoLogRead { bid: BlockId(0) });
    // Run until the dispute resolves.
    for _ in 0..200_000 {
        if !h.sim.step() || !h.cloud_node().punished.is_empty() {
            break;
        }
    }
    report(&h);
    assert!(!h.cloud_node().punished.is_empty(), "omission must be punished");

    println!("All three attacks detected; all three edges revoked.");
    println!("Deterrence is the product: a rational edge with a known identity");
    println!("does not lie when lying is guaranteed to be caught.");
}
