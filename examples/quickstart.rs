//! Quickstart: a single-partition WedgeChain deployment in the
//! deterministic simulator.
//!
//! One client and one edge node in California, the trusted cloud in
//! Virginia (61 ms RTT — Table I). Shows the two commit phases of lazy
//! certification, a verified read, and what happens when the key is
//! absent.
//!
//! Run with: `cargo run --release --example quickstart`

// Examples narrate to stdout by design.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use wedgechain::core::config::SystemConfig;
use wedgechain::core::harness::SystemHarness;

fn main() {
    println!("WedgeChain quickstart — lazy (asynchronous) certification\n");

    // Real cryptography everywhere: Schnorr-signed receipts, SHA-256
    // block digests, Merkle-certified reads.
    let mut h = SystemHarness::wedgechain(SystemConfig::real_crypto());

    // --- put: Phase I commits at edge latency ---
    let put = h.put_certified(0, 42, b"temperature=72F".to_vec());
    println!("put(42) committed:");
    println!(
        "  Phase I  (edge receipt, dispute evidence in hand): {:>7.1} ms",
        put.phase1_latency.as_millis_f64()
    );
    println!(
        "  Phase II (cloud-certified digest, equivocation now impossible): {:>7.1} ms",
        put.phase2_latency.expect("certified").as_millis_f64()
    );
    println!("  block id: {}\n", put.bid);

    // --- get: proof-carrying read, verified client-side ---
    let got = h.get(0, 42);
    println!("get(42) verified in {:.2} ms:", got.latency.as_millis_f64());
    println!("  value: {:?}", got.value.as_deref().map(String::from_utf8_lossy));
    println!("  phase: {:?} (Phase II = every L0 page certified)\n", got.phase);

    // --- absence is also proven ---
    let missing = h.get(0, 999);
    println!(
        "get(999) -> {:?} (absence proof: covering pages of every level, all verified)\n",
        missing.value
    );

    // --- a few more writes to show Phase I is flat while Phase II
    //     pays the WAN ---
    println!("five more puts (Phase I / Phase II ms):");
    for k in 100..105u64 {
        let p = h.put_certified(0, k, format!("v{k}").into_bytes());
        println!(
            "  put({k}): {:>6.1} / {:>6.1}",
            p.phase1_latency.as_millis_f64(),
            p.phase2_latency.unwrap().as_millis_f64()
        );
    }
    println!("\nPhase I never waits for the cloud: that is the entire point.");
}
