//! High-velocity IoT log ingestion on the *real-threads* runtime.
//!
//! Most examples run on the deterministic simulator; this one runs
//! WedgeChain's actual data path on OS threads — edge, client, and
//! cloud services exchanging messages over bounded `std::sync::mpsc`
//! channels, with every signature and Merkle proof real. An injected
//! 30 ms cloud hop shows Phase I committing far ahead of Phase II on
//! a real clock.
//!
//! Run with: `cargo run --release --example iot_telemetry`

// Examples narrate to stdout by design.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::time::{Duration, Instant};
use wedgechain::core::threaded::{ThreadedCluster, ThreadedConfig};
use wedgechain::lsmerkle::LsmConfig;

fn main() {
    println!("IoT telemetry on the threaded runtime (real crypto, real clock)\n");

    let cluster = ThreadedCluster::start(ThreadedConfig {
        lsm: LsmConfig { level_thresholds: vec![4, 4, 16, 64], page_capacity: 64 },
        batch_size: 32,
        cloud_hop_latency: Duration::from_millis(30), // simulated WAN hop
        ..ThreadedConfig::default()
    });

    // 64 sensors, 16 readings each: 1024 puts, batched 32 per block.
    let sensors = 64u64;
    let rounds = 16u64;
    let t0 = Instant::now();
    let mut phase1_acks = 0u64;
    let mut last_reply = None;
    for round in 0..rounds {
        for sensor in 0..sensors {
            let key = sensor; // newest reading per sensor wins
            let value = format!("sensor={sensor} round={round} temp={}F", 60 + (round % 20));
            if let Some(reply) = cluster.put(key, value.into_bytes()) {
                assert!(reply.receipt.verify(&cluster.registry));
                phase1_acks += 1;
                last_reply = Some(reply);
            }
        }
    }
    if let Some(r) = cluster.flush() {
        phase1_acks += 1;
        last_reply = Some(r);
    }
    let ingest_time = t0.elapsed();
    println!(
        "ingested {} readings in {} blocks: {:.1} ms wall ({:.0} puts/s), every receipt Schnorr-verified",
        sensors * rounds,
        phase1_acks,
        ingest_time.as_secs_f64() * 1e3,
        (sensors * rounds) as f64 / ingest_time.as_secs_f64()
    );

    // Phase II trails: wait for the last block's certification.
    if let Some(reply) = last_reply {
        let t1 = Instant::now();
        let proof = reply
            .certified
            .recv_timeout(Duration::from_secs(10))
            .expect("cloud certifies eventually");
        println!(
            "last block Phase II: +{:.1} ms after Phase I (cloud hop 30 ms each way) — digest {}…",
            t1.elapsed().as_secs_f64() * 1e3 + 0.0,
            &proof.digest.to_hex()[..12]
        );
    }

    // Verified reads of the freshest value per sensor.
    let t2 = Instant::now();
    let mut verified = 0;
    for sensor in (0..sensors).step_by(8) {
        let read = cluster.get(sensor).expect("proof verifies");
        let v = read.value.expect("sensor has data");
        let text = String::from_utf8_lossy(&v).to_string();
        assert!(text.contains(&format!("round={}", rounds - 1)), "freshest reading wins: {text}");
        verified += 1;
    }
    println!(
        "{verified} proof-carrying reads verified in {:.1} ms — newest version returned for every sensor",
        t2.elapsed().as_secs_f64() * 1e3
    );

    cluster.shutdown();
    println!("\nSame protocol objects as the simulator — blocks, receipts, ledger,");
    println!("LSMerkle, read proofs — running on real threads and channels.");
}
