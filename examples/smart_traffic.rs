//! The paper's motivating scenario (§II-A): a smart-traffic
//! application. City sensors stream readings to an untrusted
//! third-party edge provider; the state government's trusted cloud
//! datacenter certifies lazily. A traffic-control client reads recent
//! state from the edge with cryptographic proofs.
//!
//! Run with: `cargo run --release --example smart_traffic`

// Examples narrate to stdout by design.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use wedgechain::core::client::ClientPlan;
use wedgechain::core::config::SystemConfig;
use wedgechain::core::fault::FaultPlan;
use wedgechain::core::harness::SystemHarness;
use wedgechain::sim::Region;
use wedgechain::workload::KeyDist;

fn main() {
    println!("Smart-traffic scenario — sensors in California, cloud in Virginia\n");

    // Nine sensor-aggregation clients stream batched readings; keys are
    // intersection ids (Zipf: downtown intersections are hot).
    let cfg = SystemConfig {
        num_clients: 9,
        batch_size: 100,
        value_size: 64, // one compact reading
        edge_region: Region::California,
        cloud_region: Region::Virginia,
        gossip_period_ms: 500,
        ..SystemConfig::default()
    };
    let plan = ClientPlan {
        write_batches: 30,
        reads: 60,
        interleave: true, // control loop: write readings, read state
        key_dist: KeyDist::Zipf { alpha: 0.99 },
        key_space: 5_000, // intersections
        ..ClientPlan::writer(30, 100, 64, 5_000)
    };
    let mut h = SystemHarness::wedgechain_with(cfg, plan, FaultPlan::honest());
    h.run(None);

    let agg = h.aggregate();
    println!("workload: 9 clients x (30 batches of 100 readings + 60 interactive reads)");
    println!("  ingested operations : {}", agg.total_ops);
    println!(
        "  Phase-I latency     : {:>7.1} ms  (sensor sees its reading committed)",
        agg.p1_latency_ms
    );
    println!(
        "  Phase-II latency    : {:>7.1} ms  (cloud certification, asynchronous)",
        agg.p2_latency_ms
    );
    println!(
        "  verified read       : {:>7.1} ms  (traffic controller reads with proof)",
        agg.read_latency_ms
    );
    println!("  throughput          : {:>7.2} K ops/s", agg.throughput_kops);

    let edge = h.edge_node();
    println!(
        "\nedge node: {} blocks sealed, {} certified, {} merges, {} proofs served",
        edge.stats.blocks_sealed,
        edge.stats.certs_acked,
        edge.stats.merges_completed,
        edge.stats.gets_served
    );
    println!(
        "edge→cloud certification traffic: {} bytes total ({} per block — digests only)",
        edge.stats.cert_bytes_to_cloud,
        edge.stats.cert_bytes_to_cloud / edge.stats.certs_sent.max(1)
    );
    let cloud = h.cloud_node();
    println!(
        "cloud node: {} digests certified, {} merges verified, {} gossip rounds",
        cloud.stats.certs_issued, cloud.stats.merges_processed, cloud.stats.gossip_rounds
    );

    let m = h.client_metrics(0);
    println!(
        "\nclient 0: {} reads verified, {} rejected, {} disputes filed",
        m.reads_ok, m.reads_rejected, m.disputes_filed
    );
    println!("\nEvery read was served by an UNTRUSTED edge and verified against");
    println!("cloud-signed Merkle roots — the edge cannot lie without being caught.");
}
