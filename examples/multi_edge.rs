//! N untrusted edges, one trusted cloud, on *real threads* — with a
//! lie caught purely by engine-owned clocks.
//!
//! Three edge partitions run concurrently (one edge service thread +
//! one client-engine thread each) against a single cloud thread.
//! Partition 1's edge withholds certification of its second block: the
//! client's Phase-I receipt is in hand, but Phase II never comes. No
//! thread schedules a timeout — the client *engine* exposes its
//! dispute deadline via `next_deadline_ns()`, the service thread
//! sleeps exactly until it (`recv_timeout`), and the resulting
//! `MissingCertification` dispute convicts the edge at the cloud.
//! Honest partitions keep working; the punished one burns alone.
//!
//! Run with: `cargo run --release --example multi_edge`

// Examples narrate to stdout by design.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::time::Duration;
use wedgechain::core::fault::FaultPlan;
use wedgechain::core::messages::DisputeVerdict;
use wedgechain::core::threaded::{ThreadedCluster, ThreadedConfig};
use wedgechain::lsmerkle::LsmConfig;

fn main() {
    println!("WedgeChain multi-edge threaded runtime — lazy trust across partitions\n");

    let partitions = 3;
    let cluster = ThreadedCluster::start(ThreadedConfig {
        lsm: LsmConfig::paper_eval(),
        num_edges: partitions,
        batch_size: 1,
        // Partition 1 withholds certification of its block 1.
        faults: vec![FaultPlan::honest(), FaultPlan::withhold_on(1), FaultPlan::honest()],
        gossip_period: Some(Duration::from_millis(25)),
        dispute_timeout: Duration::from_millis(250),
        ..ThreadedConfig::default()
    });

    // Each partition writes its own keyspace; every put Phase-I
    // commits immediately at its edge.
    for p in 0..partitions {
        for k in 0..4u64 {
            let key = 100 * p as u64 + k;
            let reply = cluster
                .put_on(p, key, format!("p{p}-v{k}").into_bytes())
                .expect("batch size 1 seals every put");
            assert!(reply.receipt.verify(&cluster.registry));
            // Phase II for everything the edges actually certify.
            let honest = !(p == 1 && k == 1);
            if honest {
                let proof = reply.certified.recv_timeout(Duration::from_secs(5)).unwrap();
                assert_eq!(proof.digest, reply.receipt.block_digest);
            }
        }
    }
    println!("12 puts Phase-I committed across {partitions} partitions (11 certified, 1 withheld)");

    // Reads verify end-to-end per partition, concurrently.
    std::thread::scope(|scope| {
        for p in 0..partitions {
            let cluster = &cluster;
            scope.spawn(move || {
                for k in 0..4u64 {
                    let read = cluster.get_on(p, 100 * p as u64 + k).expect("read verifies");
                    assert_eq!(read.value, Some(format!("p{p}-v{k}").into_bytes()));
                }
            });
        }
    });
    println!("12 verified reads served, every proof checked by the client engine");

    // Let the engine-owned dispute deadline fire and a gossip round
    // follow; the threads only sleep until the engines say "now".
    std::thread::sleep(Duration::from_millis(600));

    let report = cluster.shutdown().expect("sole owner receives the final state");
    println!("\n--- final protocol state ---");
    for (p, edge) in report.edges.iter().enumerate() {
        println!(
            "partition {p}: {} blocks sealed, certified prefix {}, client watermark {:?}, \
             disputes {}/{} (filed/upheld)",
            edge.edge_stats.blocks_sealed,
            edge.certified_len,
            edge.watermark_len,
            edge.client_metrics.disputes_filed,
            edge.client_metrics.disputes_upheld,
        );
        for verdict in &edge.verdicts {
            if let DisputeVerdict::EdgePunished { edge, grounds } = verdict {
                println!("  verdict: edge {edge:?} punished — {grounds}");
            }
        }
    }
    println!(
        "cloud: {} certs issued, {} gossip rounds, punished {:?}",
        report.cloud_stats.certs_issued, report.cloud_stats.gossip_rounds, report.punished,
    );

    assert_eq!(report.punished.len(), 1, "exactly the withholding edge is punished");
    assert_eq!(report.punished[0], report.edges[1].edge);
    assert_eq!(report.edges[1].client_metrics.disputes_upheld, 1);
    for p in [0usize, 2] {
        assert_eq!(report.edges[p].certified_len, 4, "honest partition fully certified");
        assert!(report.edges[p].verdicts.is_empty());
    }
    println!("\nthe lying partition burned alone; no driver ever scheduled a timer");
}
