//! # WedgeChain
//!
//! A reproduction of **"WedgeChain: A Trusted Edge-Cloud Store With
//! Asynchronous (Lazy) Trust"** (Faisal Nawab, ICDE 2021,
//! arXiv:2012.02258), built as a Rust workspace.
//!
//! WedgeChain spans untrusted *edge* nodes and a trusted *cloud* node.
//! Its three ideas, all implemented here:
//!
//! 1. **Lazy (asynchronous) certification** — clients commit at the
//!    edge immediately (*Phase I*), holding a signed edge response as
//!    dispute evidence; the cloud certifies asynchronously (*Phase II*).
//!    A lying edge is always detected eventually and punished.
//! 2. **Data-free certification** — only 32-byte digests cross the
//!    WAN; agreement on a one-way digest is agreement on the data.
//! 3. **LSMerkle** — an LSM-tree-of-Merkle-trees index (extending
//!    mLSM) that serves trusted key-value reads from the edge.
//!
//! This facade crate re-exports the workspace's public API. Start with
//! [`core`] for the protocol, [`sim`] for the deterministic testbed,
//! and the `examples/` directory for runnable scenarios.
//!
//! ```
//! use wedgechain::core::harness::SystemHarness;
//! use wedgechain::core::config::SystemConfig;
//!
//! // One edge node in California, the cloud in Virginia, one client.
//! let mut h = SystemHarness::wedgechain(SystemConfig::real_crypto());
//! let put = h.put(0, 17, b"72F".to_vec());
//! // Phase I commits at edge latency, far below the 61 ms cloud RTT.
//! assert!(put.phase1_latency.as_millis_f64() < 30.0);
//! let got = h.get(0, 17);
//! assert_eq!(got.value.as_deref(), Some(b"72F".as_ref()));
//! ```

#![forbid(unsafe_code)]

/// Cloud-only and Edge-baseline comparison systems.
pub use wedge_baselines as baselines;
/// The WedgeChain protocol: client/edge/cloud state machines.
pub use wedge_core as core;
/// Cryptographic substrate: SHA-256, HMAC, Schnorr, Merkle trees.
pub use wedge_crypto as crypto;
/// The logging layer: blocks, batching, certification state.
pub use wedge_log as log;
/// The LSMerkle trusted index.
pub use wedge_lsmerkle as lsmerkle;
/// The networked (real TCP sockets) runtime.
pub use wedge_net as net;
/// Deterministic discrete-event simulator and WAN model.
pub use wedge_sim as sim;
/// Workload generation for the evaluation.
pub use wedge_workload as workload;
